// BatchScheduler: the batched many-query search must be bit-identical to
// the serial per-query loop for every thread count x shard size x top_k
// combination; the profile LRU must behave like a textbook LRU with exact
// counters; hits must carry ORIGINAL database indices.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sequential.h"
#include "search/batch_scheduler.h"
#include "search/database_search.h"
#include "seq/generator.h"
#include "seq/pairgen.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

seq::Database make_db(std::uint64_t seed, std::size_t count,
                      double median_len = 100.0) {
  seq::SequenceGenerator gen(seed);
  return seq::Database(score::Alphabet::protein(),
                       gen.protein_database(count, median_len, 0.6, 10, 400));
}

std::vector<std::vector<std::uint8_t>> make_queries(std::uint64_t seed) {
  seq::SequenceGenerator gen(seed);
  std::vector<std::vector<std::uint8_t>> qs;
  for (std::size_t len : {60, 150, 90, 220}) {
    qs.push_back(score::Alphabet::protein().encode(gen.protein(len).residues));
  }
  qs.push_back(qs[1]);  // a repeat, so the profile cache gets a hit
  return qs;
}

// The central contract: batched == serial, bit for bit, over the full
// scheduling parameter grid.
TEST(BatchScheduler, BitIdenticalToSerialLoopAcrossGrid) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  const auto queries = make_queries(81);
  const seq::Database base_db = make_db(82, 90);

  // Serial oracle (historical per-query loop).
  search::SearchOptions serial_opt;
  serial_opt.batch_queries = false;
  serial_opt.threads = 2;
  serial_opt.top_k = 10;
  std::vector<search::SearchResult> oracle;
  {
    seq::Database db = base_db;
    oracle = search::DatabaseSearch(m, cfg, serial_opt).search_many(queries, db);
  }
  ASSERT_EQ(oracle.size(), queries.size());

  for (int threads : {1, 2, 8}) {
    for (std::size_t shard : {std::size_t{1}, std::size_t{7}, std::size_t{0},
                              std::size_t{64}}) {
      for (std::size_t top_k : {std::size_t{0}, std::size_t{3},
                                std::size_t{10}}) {
        search::SearchOptions opt;
        opt.batch_queries = true;
        opt.threads = threads;
        opt.shard_size = shard;
        opt.top_k = top_k;
        seq::Database db = base_db;
        const auto got =
            search::DatabaseSearch(m, cfg, opt).search_many(queries, db);
        ASSERT_EQ(got.size(), oracle.size());
        for (std::size_t qi = 0; qi < got.size(); ++qi) {
          EXPECT_EQ(got[qi].scores, oracle[qi].scores)
              << "threads=" << threads << " shard=" << shard
              << " top_k=" << top_k << " query=" << qi;
          ASSERT_EQ(got[qi].top.size(), std::min(top_k, base_db.size()));
          for (std::size_t k = 0; k < got[qi].top.size(); ++k) {
            EXPECT_EQ(got[qi].top[k].index, oracle[qi].top[k].index);
            EXPECT_EQ(got[qi].top[k].score, oracle[qi].top[k].score);
          }
        }
      }
    }
  }
}

TEST(BatchScheduler, StatsAreCoherent) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);

  search::SearchOptions opt;
  opt.threads = 4;
  opt.shard_size = 8;
  search::BatchScheduler sched(m, cfg, opt);

  const auto queries = make_queries(83);
  seq::Database db = make_db(84, 50);
  const auto results = sched.run(queries, db);
  const search::BatchStats& st = sched.last_stats();

  EXPECT_EQ(st.queries, queries.size());
  EXPECT_EQ(st.subjects, db.size());
  EXPECT_EQ(st.shard_size, 8u);
  EXPECT_EQ(st.threads, 4);
  // 4 distinct queries + 1 repeat: tiles are generated per distinct
  // query (the repeat is deduped), ceil(50 / 8) = 7 tiles each.
  EXPECT_EQ(st.tiles, 4u * 7u);
  EXPECT_EQ(st.dedup_queries, 1u);
  // Cold cache with default capacity: one lookup per occurrence.
  EXPECT_EQ(st.cache_misses, 4u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_evictions, 0u);
  EXPECT_GT(st.wall_seconds, 0.0);
  EXPECT_GT(st.busy_seconds, 0.0);
  EXPECT_GT(st.occupancy, 0.0);
  EXPECT_LE(st.occupancy, 1.0 + 1e-9);
  // Computed cells = sum over DISTINCT queries of |q| * total_residues;
  // the repeat's cells were never recomputed.
  std::size_t cells = 0;
  for (std::size_t qi = 0; qi + 1 < queries.size(); ++qi) {
    cells += queries[qi].size() * db.total_residues();
  }
  EXPECT_EQ(st.cells, cells);
  // Every result's seconds is the batch wall clock.
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.seconds, st.wall_seconds);
  }
}

// The cache resolves one lookup per query occurrence, in query order, so
// counters follow the textbook LRU trace exactly.
TEST(BatchScheduler, ProfileCacheEvictsLeastRecentlyUsed) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);

  seq::SequenceGenerator gen(85);
  const auto A = score::Alphabet::protein().encode(gen.protein(50).residues);
  const auto B = score::Alphabet::protein().encode(gen.protein(60).residues);
  const auto C = score::Alphabet::protein().encode(gen.protein(70).residues);

  search::SearchOptions opt;
  opt.threads = 2;
  opt.profile_cache_capacity = 2;
  search::BatchScheduler sched(m, cfg, opt);
  seq::Database db = make_db(86, 12);

  // A, B: two cold misses fill the cache.
  sched.run({A, B}, db);
  EXPECT_EQ(sched.cache().misses(), 2u);
  EXPECT_EQ(sched.cache().hits(), 0u);
  EXPECT_EQ(sched.cache().evictions(), 0u);
  EXPECT_EQ(sched.cache().size(), 2u);

  // C, A: C evicts A (LRU), then A misses again and evicts B.
  sched.run({C, A}, db);
  EXPECT_EQ(sched.cache().misses(), 4u);
  EXPECT_EQ(sched.cache().hits(), 0u);
  EXPECT_EQ(sched.cache().evictions(), 2u);
  EXPECT_EQ(sched.cache().size(), 2u);

  // A, C: both resident now -> two hits, nothing evicted.
  sched.run({A, C}, db);
  EXPECT_EQ(sched.cache().misses(), 4u);
  EXPECT_EQ(sched.cache().hits(), 2u);
  EXPECT_EQ(sched.cache().evictions(), 2u);
}

// Same residues, different config -> different cache entries.
TEST(BatchScheduler, CacheKeyIncludesConfig) {
  const auto& m = score::ScoreMatrix::blosum62();
  seq::SequenceGenerator gen(87);
  const auto q = score::Alphabet::protein().encode(gen.protein(40).residues);

  search::QueryProfileCache cache(8);
  AlignConfig local;
  local.kind = AlignKind::Local;
  local.pen = Penalties::symmetric(10, 2);
  AlignConfig global = local;
  global.kind = AlignKind::Global;

  core::QueryOptions qopt;
  const auto c1 = cache.get_or_build(m, local, qopt, q);
  const auto c2 = cache.get_or_build(m, global, qopt, q);
  const auto c3 = cache.get_or_build(m, local, qopt, q);
  EXPECT_NE(c1.get(), c2.get());
  EXPECT_EQ(c1.get(), c3.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

// Hits must report ORIGINAL insertion indices even though the scheduler
// length-sorts the database internally.
TEST(BatchScheduler, HitsCarryOriginalIndices) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  seq::SequenceGenerator gen(88);
  const seq::Sequence qseq = gen.protein(120, "Q");
  const auto query = score::Alphabet::protein().encode(qseq.residues);

  // Short planted homolog inside longer decoys: length-sorting moves it,
  // original index must survive.
  seq::Database db = make_db(89, 40, 300.0);
  const std::size_t planted = db.size();
  db.add(seq::encode(
      score::Alphabet::protein(),
      seq::make_similar_subject(gen, qseq, {seq::Level::Hi, seq::Level::Hi})));

  search::SearchOptions opt;
  opt.threads = 3;
  opt.top_k = 1;
  const auto results =
      search::DatabaseSearch(m, cfg, opt).search_many({query}, db);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].top.size(), 1u);
  EXPECT_EQ(results[0].top[0].index, planted);
  EXPECT_TRUE(db.permuted());
  // scores[] is original-indexed too: verify against the oracle.
  EXPECT_EQ(results[0].scores[planted],
            core::align_sequential(m, cfg, query, db.by_original(planted).view()));
}

TEST(BatchScheduler, EmptyBatchAndEmptyDatabase) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);

  search::SearchOptions opt;
  opt.threads = 2;
  search::DatabaseSearch engine(m, cfg, opt);

  // No queries: no results, no crash.
  seq::Database db = make_db(90, 5);
  EXPECT_TRUE(engine.search_many({}, db).empty());

  // Empty database: per-query result with zero scores and no hits.
  seq::SequenceGenerator gen(91);
  const auto q = score::Alphabet::protein().encode(gen.protein(30).residues);
  seq::Database empty_db;
  const auto res = engine.search_many({q}, empty_db);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].scores.empty());
  EXPECT_TRUE(res[0].top.empty());

  // A zero-length query is rejected exactly like in the serial path.
  EXPECT_THROW(engine.search_many({{}}, db), std::invalid_argument);
}

TEST(BatchScheduler, UnsortedDatabaseStaysUnsorted) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);

  search::SearchOptions opt;
  opt.threads = 2;
  opt.sort_database = false;
  seq::Database db = make_db(92, 20);
  const auto queries = make_queries(93);

  search::SearchOptions serial = opt;
  serial.batch_queries = false;
  seq::Database db2 = db;
  const auto oracle =
      search::DatabaseSearch(m, cfg, serial).search_many(queries, db2);
  const auto got =
      search::DatabaseSearch(m, cfg, opt).search_many(queries, db);
  EXPECT_FALSE(db.permuted());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(got[qi].scores, oracle[qi].scores) << "query " << qi;
  }
}

}  // namespace
