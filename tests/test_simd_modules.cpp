// Unit and property tests for the vector-module layer (paper Table I):
// every backend x type combination is checked against scalar semantics,
// and wgt_max_scan is checked against its logical-order reference oracle.
//
// This TU is compiled with all ISA flags; each test guards execution with
// a runtime cpuid check and GTEST_SKIP()s on unsupported hardware.
#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <random>
#include <type_traits>
#include <vector>

#include "filter/sig_scan.h"
#include "simd/modules.h"
#include "simd/vec_avx2.h"
#include "simd/vec_avx512.h"
#include "simd/vec_avx512bw.h"
#include "simd/vec_scalar.h"
#include "simd/vec_sse41.h"
#include "util/aligned_buffer.h"
#include "util/saturate.h"

using namespace aalign;
using namespace aalign::simd;

namespace {

template <class Ops>
bool supported() {
  return isa_available(IsaKind::Scalar);  // specialized below per tag
}

template <class T, class Isa>
bool ops_supported(VecOps<T, Isa>*) {
  return isa_available(isa_kind<Isa>());
}

template <class Ops>
std::vector<typename Ops::value_type> random_values(std::mt19937_64& rng,
                                                    std::size_t count,
                                                    bool full_range) {
  using T = typename Ops::value_type;
  const long lo =
      full_range ? std::numeric_limits<T>::min() : neg_inf<T>() / 2;
  const long hi = full_range ? std::numeric_limits<T>::max() : 1000;
  std::uniform_int_distribution<long> d(lo, std::min<long>(hi, 30000));
  std::vector<T> v(count);
  for (auto& x : v) x = static_cast<T>(d(rng));
  return v;
}

template <class Ops>
void primitive_roundtrip_and_arith() {
  using T = typename Ops::value_type;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(42);

  for (int iter = 0; iter < 50; ++iter) {
    const auto a = random_values<Ops>(rng, W, true);
    const auto b = random_values<Ops>(rng, W, true);
    alignas(64) T abuf[W], bbuf[W], out[W];
    std::copy(a.begin(), a.end(), abuf);
    std::copy(b.begin(), b.end(), bbuf);

    const auto va = Ops::load(abuf);
    const auto vb = Ops::load(bbuf);

    // load/store roundtrip
    Ops::store(out, va);
    for (int l = 0; l < W; ++l) ASSERT_EQ(out[l], a[l]);

    // adds matches scalar saturating semantics
    Ops::store(out, Ops::adds(va, vb));
    for (int l = 0; l < W; ++l)
      ASSERT_EQ(out[l], util::sat_add(a[l], b[l])) << "lane " << l;

    // subs
    Ops::store(out, Ops::subs(va, vb));
    for (int l = 0; l < W; ++l)
      ASSERT_EQ(out[l], util::sat_sub(a[l], b[l])) << "lane " << l;

    // max / min
    Ops::store(out, Ops::max(va, vb));
    for (int l = 0; l < W; ++l) ASSERT_EQ(out[l], std::max(a[l], b[l]));
    Ops::store(out, Ops::min(va, vb));
    for (int l = 0; l < W; ++l) ASSERT_EQ(out[l], std::min(a[l], b[l]));

    // any_gt
    bool expect = false;
    for (int l = 0; l < W; ++l) expect = expect || (a[l] > b[l]);
    ASSERT_EQ(Ops::any_gt(va, vb), expect);
  }
}

template <class Ops>
void shift_insert_semantics() {
  using T = typename Ops::value_type;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(7);

  for (int iter = 0; iter < 50; ++iter) {
    const auto a = random_values<Ops>(rng, W, true);
    alignas(64) T abuf[W], out[W];
    std::copy(a.begin(), a.end(), abuf);
    const T fill = static_cast<T>(iter - 25);

    Ops::store(out, Ops::shift_insert(Ops::load(abuf), fill));
    ASSERT_EQ(out[0], fill);
    for (int l = 1; l < W; ++l) ASSERT_EQ(out[l], a[l - 1]) << "lane " << l;

    // Generic n-lane shift agrees for every n.
    using M = Modules<Ops>;
    for (int n = 1; n < W; ++n) {
      Ops::store(out, M::rshift_x_fill(Ops::load(abuf), n, fill));
      for (int l = 0; l < W; ++l) {
        const T expect = l < n ? fill : a[l - n];
        ASSERT_EQ(out[l], expect) << "n=" << n << " lane " << l;
      }
    }
  }
}

template <class Ops>
void set_vector_semantics() {
  using T = typename Ops::value_type;
  using M = Modules<Ops>;
  constexpr int W = Ops::kWidth;

  for (int segs : {1, 3, 17}) {
    for (int init : {0, -5, 40}) {
      alignas(64) T out[W];
      Ops::store(out, M::set_vector(segs, static_cast<T>(init), -12, -2));
      for (int l = 0; l < W; ++l) {
        const long expect = static_cast<long>(init) +
                            (-12L) + static_cast<long>(l) * segs * (-2L);
        const long clamped =
            std::max(expect, static_cast<long>(neg_inf<T>()));
        ASSERT_EQ(static_cast<long>(out[l]), clamped)
            << "segs=" << segs << " init=" << init << " lane=" << l;
      }
    }
  }
}

template <class Ops>
void wgt_max_scan_matches_reference() {
  using T = typename Ops::value_type;
  using M = Modules<Ops>;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(1234);

  for (int segs : {1, 2, 5, 16, 33}) {
    const int mpad = segs * W;
    for (int iter = 0; iter < 20; ++iter) {
      // Values in kernel-realistic range (scores, not rails).
      const auto logical = random_values<Ops>(rng, mpad, false);

      // Stripe them.
      util::AlignedBuffer<T> in(mpad), out(mpad), ref(mpad);
      for (int e = 0; e < mpad; ++e) {
        in[striped_offset(e, segs, W)] = logical[e];
      }

      const T init = static_cast<T>(static_cast<int>(iter) * 3 - 20);
      const T gap_first = -13, gap_ext = -3;
      M::wgt_max_scan(in.data(), out.data(), segs, init, gap_first, gap_ext);

      std::vector<T> expect(mpad);
      wgt_max_scan_reference<T>(logical.data(), expect.data(), mpad, init,
                                gap_first, gap_ext);
      for (int e = 0; e < mpad; ++e) {
        ASSERT_EQ(out[striped_offset(e, segs, W)], expect[e])
            << "segs=" << segs << " logical=" << e;
      }
    }
  }
}

template <class Ops>
void influence_and_hmax() {
  using T = typename Ops::value_type;
  using M = Modules<Ops>;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(99);

  for (int iter = 0; iter < 30; ++iter) {
    const auto a = random_values<Ops>(rng, W, true);
    alignas(64) T abuf[W];
    std::copy(a.begin(), a.end(), abuf);
    const auto va = Ops::load(abuf);

    T expect = a[0];
    for (int l = 1; l < W; ++l) expect = std::max(expect, a[l]);
    ASSERT_EQ(M::hmax(va), expect);

    // influence_test(v, v) must be false (nothing beats itself).
    ASSERT_FALSE(M::influence_test(va, va));
    // Raising one lane by 1 (if not at rail) must trigger it.
    if (a[0] < std::numeric_limits<T>::max()) {
      alignas(64) T bbuf[W];
      std::copy(a.begin(), a.end(), bbuf);
      bbuf[0] = static_cast<T>(bbuf[0] + 1);
      ASSERT_TRUE(M::influence_test(Ops::load(bbuf), va));
    }
  }
}

template <class Ops>
void eq_mask_semantics() {
  // The multi-precision inter-sequence engine's saturation test.
  using T = typename Ops::value_type;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(77);

  for (int iter = 0; iter < 30; ++iter) {
    auto a = random_values<Ops>(rng, W, true);
    auto b = random_values<Ops>(rng, W, true);
    // Force some equal lanes (including the rail value the engine tests).
    for (int l = 0; l < W; ++l) {
      if (rng() % 3 == 0) b[l] = a[l];
      if (rng() % 5 == 0) a[l] = b[l] = std::numeric_limits<T>::max();
    }
    alignas(64) T abuf[W], bbuf[W];
    std::copy(a.begin(), a.end(), abuf);
    std::copy(b.begin(), b.end(), bbuf);
    std::uint64_t expect = 0;
    for (int l = 0; l < W; ++l) {
      if (a[l] == b[l]) expect |= std::uint64_t{1} << l;
    }
    ASSERT_EQ(Ops::eq_mask(Ops::load(abuf), Ops::load(bbuf)), expect);
  }
}

template <class Ops>
void gather_semantics() {
  // int32 lanes only (the inter-sequence kernel's dependency).
  using T = typename Ops::value_type;
  if constexpr (sizeof(T) == 4) {
    constexpr int W = Ops::kWidth;
    std::mt19937_64 rng(55);
    std::vector<T> table(997);
    for (auto& v : table) v = static_cast<T>(rng() % 100000) - 50000;
    std::uniform_int_distribution<int> idx_d(0, 996);
    for (int iter = 0; iter < 30; ++iter) {
      alignas(64) T idx[W], out[W];
      for (int l = 0; l < W; ++l) idx[l] = static_cast<T>(idx_d(rng));
      Ops::store(out, Ops::gather(table.data(), Ops::load(idx)));
      for (int l = 0; l < W; ++l) ASSERT_EQ(out[l], table[idx[l]]);
    }
  }
}

template <class Ops>
void table_lookup_semantics() {
  // Optional primitive (backends with an in-register permute): 32-entry
  // table select, the inter-sequence score-profile build.
  using T = typename Ops::value_type;
  using reg = typename Ops::reg;
  if constexpr (requires(const T* p, reg r) { Ops::table_lookup(p, r); }) {
    constexpr int W = Ops::kWidth;
    std::mt19937_64 rng(66);
    alignas(64) T table[64] = {};
    for (int c = 0; c < 32; ++c) {
      table[c] = static_cast<T>(static_cast<int>(rng() % 200) - 100);
    }
    std::uniform_int_distribution<int> idx_d(0, 31);
    for (int iter = 0; iter < 30; ++iter) {
      alignas(64) T idx[W], out[W];
      for (int l = 0; l < W; ++l) idx[l] = static_cast<T>(idx_d(rng));
      Ops::store(out, Ops::table_lookup(table, Ops::load(idx)));
      for (int l = 0; l < W; ++l) ASSERT_EQ(out[l], table[idx[l]]);
    }
  }
}

// seg_scan_max: the lazy-F carry scan primitive. Contract (vec_scalar.h):
// out[0] = fill; out[l] = max(in[l-1], out[l-1] (+) step), where (+) is a
// saturating add for narrow types and a plain add for int32. The reference
// below runs the recurrence in long arithmetic with an explicit clamp -
// the in-register Kogge-Stone trees and the spill paths must both match
// it, including full-range inputs that hit the rails.
template <class Ops>
void seg_scan_max_matches_reference() {
  using T = typename Ops::value_type;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(0x5Ca9);

  // Full-range (rail-hitting) inputs are defined behaviour only for the
  // saturating narrow types; int32 uses plain adds and relies on the
  // neg_inf = min/2 headroom invariant, so it is tested in score range.
  for (const bool full_range : {false, sizeof(T) < 4}) {
    for (const long step : {-1L, -3L, -40L, -300L, 0L}) {
      for (int iter = 0; iter < 20; ++iter) {
        const auto raw = random_values<Ops>(rng, W, full_range);
        util::AlignedBuffer<T> vals(W);
        for (int l = 0; l < W; ++l) vals[l] = raw[static_cast<std::size_t>(l)];
        typename Ops::reg v = Ops::load(vals.data());
        const T fill = neg_inf<T>();
        alignas(64) T out[W];
        Ops::to_array(Ops::seg_scan_max(v, step, fill), out);

        long carry = fill;
        for (int l = 0; l < W; ++l) {
          ASSERT_EQ(out[l], static_cast<T>(carry))
              << "lane " << l << " step " << step << " full=" << full_range;
          long ext = carry + step;
          if (sizeof(T) < 4) {
            const long lo = std::numeric_limits<T>::min();
            const long hi = std::numeric_limits<T>::max();
            ext = ext < lo ? lo : (ext > hi ? hi : ext);
          }
          carry = std::max(static_cast<long>(vals[l]), ext);
        }
      }
    }
  }
}

// popcount_and: population count of the raw-bit AND of two whole
// registers, lane-type agnostic. Checked bit-exact against a per-lane
// reference on edge patterns (zero, all-ones, sign-bit-only, low-bit)
// and random full-range lanes.
template <class Ops>
void popcount_and_matches_reference() {
  using T = typename Ops::value_type;
  using U = std::make_unsigned_t<T>;
  constexpr int W = Ops::kWidth;
  std::mt19937_64 rng(0xB175);

  alignas(64) T a[W], b[W];
  const auto reference = [&]() {
    std::uint64_t n = 0;
    for (int l = 0; l < W; ++l) {
      n += static_cast<std::uint64_t>(std::popcount(
          static_cast<U>(static_cast<U>(a[l]) & static_cast<U>(b[l]))));
    }
    return n;
  };

  const U specials[] = {U{0}, static_cast<U>(~U{0}),
                        static_cast<U>(U{1} << (sizeof(T) * 8 - 1)), U{1}};
  for (U pa : specials) {
    for (U pb : specials) {
      for (int l = 0; l < W; ++l) {
        a[l] = static_cast<T>(pa);
        b[l] = static_cast<T>(pb);
      }
      ASSERT_EQ(Ops::popcount_and(Ops::load(a), Ops::load(b)), reference());
    }
  }
  for (int iter = 0; iter < 200; ++iter) {
    for (int l = 0; l < W; ++l) {
      a[l] = static_cast<T>(rng());
      b[l] = static_cast<T>(rng());
    }
    ASSERT_EQ(Ops::popcount_and(Ops::load(a), Ops::load(b)), reference())
        << "iter " << iter;
  }
}

template <class Ops>
void run_all() {
  primitive_roundtrip_and_arith<Ops>();
  shift_insert_semantics<Ops>();
  set_vector_semantics<Ops>();
  wgt_max_scan_matches_reference<Ops>();
  seg_scan_max_matches_reference<Ops>();
  influence_and_hmax<Ops>();
  eq_mask_semantics<Ops>();
  gather_semantics<Ops>();
  table_lookup_semantics<Ops>();
  popcount_and_matches_reference<Ops>();
}

#define AALIGN_SIMD_TEST(SUITE, T, TAG)                       \
  TEST(SUITE, T##_##TAG) {                                    \
    if (!isa_available(isa_kind<TAG##Tag>()))                 \
      GTEST_SKIP() << #TAG " not available on this machine";  \
    run_all<VecOps<T, TAG##Tag>>();                           \
  }

using std::int16_t;
using std::int32_t;
using std::int8_t;

AALIGN_SIMD_TEST(SimdModules, int8_t, Scalar)
AALIGN_SIMD_TEST(SimdModules, int16_t, Scalar)
AALIGN_SIMD_TEST(SimdModules, int32_t, Scalar)
#if defined(AALIGN_HAVE_SSE41)
AALIGN_SIMD_TEST(SimdModules, int8_t, Sse41)
AALIGN_SIMD_TEST(SimdModules, int16_t, Sse41)
AALIGN_SIMD_TEST(SimdModules, int32_t, Sse41)
#endif
#if defined(AALIGN_HAVE_AVX2)
AALIGN_SIMD_TEST(SimdModules, int8_t, Avx2)
AALIGN_SIMD_TEST(SimdModules, int16_t, Avx2)
AALIGN_SIMD_TEST(SimdModules, int32_t, Avx2)
#endif
#if defined(AALIGN_HAVE_AVX512)
AALIGN_SIMD_TEST(SimdModules, int32_t, Avx512)
#endif
#if defined(AALIGN_HAVE_AVX512BW) && defined(__AVX512VBMI__)
AALIGN_SIMD_TEST(SimdModules, int8_t, Avx512Bw)
AALIGN_SIMD_TEST(SimdModules, int16_t, Avx512Bw)
AALIGN_SIMD_TEST(SimdModules, int32_t, Avx512Bw)
#endif

// The signature-scan dispatch (filter/sig_scan.h) over whole word
// arrays: every backend must agree bit-exactly with the scalar popcount
// sum, including word counts at and around each backend's lane boundary
// (strides are 4/8/16 int32 words, so 4..80 covers below/at/above for
// all of them plus the strided-sweep tail path).
TEST(SigScan, BitExactAcrossBackendsAndWidths) {
  std::mt19937_64 rng(0x5163);
  for (const std::size_t words : {4, 8, 12, 16, 24, 32, 48, 64, 80}) {
    util::AlignedBuffer<std::int32_t> a, b;
    a.resize(words);
    b.resize(words);
    std::uint64_t expect = 0;
    for (std::size_t w = 0; w < words; ++w) {
      a[w] = static_cast<std::int32_t>(rng());
      b[w] = static_cast<std::int32_t>(rng());
      expect += static_cast<std::uint64_t>(
          std::popcount(static_cast<std::uint32_t>(a[w]) &
                        static_cast<std::uint32_t>(b[w])));
    }
    for (IsaKind isa : kAllIsaKinds) {
      if (!isa_available(isa)) continue;
      const filter::SigScanFn fn = filter::sig_scan_fn(isa);
      ASSERT_NE(fn, nullptr) << isa_name(isa);
      EXPECT_EQ(fn(a.data(), b.data(), words), expect)
          << isa_name(isa) << " words=" << words;
    }
  }
}

// The scan reference itself: spot-check tiny cases by hand.
TEST(WgtMaxScanReference, TinyHandCase) {
  // m=3, init=10, first=-5, ext=-1:
  // out[0] = 10-5+0 = 5
  // out[1] = max(10-5-1, in0-5) ; out[2] = max(10-5-2, in0-5-1, in1-5)
  const std::int32_t in[3] = {20, 0, 0};
  std::int32_t out[3];
  wgt_max_scan_reference<std::int32_t>(in, out, 3, 10, -5, -1);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 15);  // in0 - 5
  EXPECT_EQ(out[2], 14);  // in0 - 5 - 1
}

}  // namespace
