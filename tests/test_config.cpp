// Configuration layer: validation, gap-model derivation, width pre-checks
// (min_safe_width), and the Farrar-safety predicate.
#include <gtest/gtest.h>

#include "core/config.h"

using namespace aalign;

namespace {

TEST(Config, GapModelDerivation) {
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);
  EXPECT_EQ(cfg.gap_model(), GapModel::Affine);
  cfg.pen = Penalties::symmetric(0, 4);
  EXPECT_EQ(cfg.gap_model(), GapModel::Linear);
}

TEST(Config, ValidationRejectsBadPenalties) {
  AlignConfig cfg;
  cfg.pen.query.extend = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.pen.subject.open = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // Mixed linear/affine is rejected.
  cfg = {};
  cfg.pen.query = GapScheme{0, 4};
  cfg.pen.subject = GapScheme{10, 2};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, FarrarSafety) {
  const auto& blosum = score::ScoreMatrix::blosum62();  // min -4
  EXPECT_TRUE(farrar_safe(blosum, Penalties::symmetric(10, 2)));   // -4 >= -4
  EXPECT_TRUE(farrar_safe(blosum, Penalties::symmetric(0, 4)));    // -4 >= -8
  EXPECT_FALSE(farrar_safe(blosum, Penalties::symmetric(10, 1)));  // -4 < -2

  // A mild matrix makes small extends safe again.
  const score::ScoreMatrix dna = score::ScoreMatrix::dna(2, 1);
  EXPECT_TRUE(farrar_safe(dna, Penalties::symmetric(10, 1)));
}

TEST(Config, MinSafeWidthLocal) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  // Tiny problem: max score ~ 10*11 = 110 < 127-headroom? headroom ~35 ->
  // needs int16. Slightly conservative is fine; must never be wider than
  // int16 here and never narrower than what the bound implies.
  const ScoreWidth w_small = min_safe_width(cfg, m, 5, 5);
  EXPECT_LE(static_cast<int>(w_small), static_cast<int>(ScoreWidth::W16));
  // 10k identical residues: bound ~110k -> int32.
  EXPECT_EQ(min_safe_width(cfg, m, 10000, 10000), ScoreWidth::W32);
  // 1k: bound ~11k -> int16.
  EXPECT_EQ(min_safe_width(cfg, m, 1000, 1000), ScoreWidth::W16);
}

TEST(Config, MinSafeWidthGlobalCountsBoundaries) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Global;
  cfg.pen = Penalties::symmetric(10, 2);
  // Local would allow narrow widths at this size, but global boundary
  // gaps reach -(10 + 600*2) and mismatches can stack: needs wider.
  const ScoreWidth local_w = [&] {
    AlignConfig c = cfg;
    c.kind = AlignKind::Local;
    return min_safe_width(c, m, 40, 40);
  }();
  const ScoreWidth global_w = min_safe_width(cfg, m, 40, 40);
  EXPECT_GE(static_cast<int>(global_w), static_cast<int>(local_w));
  EXPECT_EQ(min_safe_width(cfg, m, 60000, 60000), ScoreWidth::W32);
}

TEST(Config, ToStringCoverage) {
  EXPECT_STREQ(to_string(AlignKind::Local), "local");
  EXPECT_STREQ(to_string(AlignKind::Global), "global");
  EXPECT_STREQ(to_string(AlignKind::SemiGlobal), "semiglobal");
  EXPECT_STREQ(to_string(GapModel::Linear), "linear");
  EXPECT_STREQ(to_string(GapModel::Affine), "affine");
  EXPECT_STREQ(to_string(Strategy::StripedIterate), "striped-iterate");
  EXPECT_STREQ(to_string(Strategy::StripedScan), "striped-scan");
  EXPECT_STREQ(to_string(Strategy::Hybrid), "hybrid");
  EXPECT_STREQ(to_string(ScoreWidth::W8), "int8");
  EXPECT_STREQ(to_string(ScoreWidth::W16), "int16");
  EXPECT_STREQ(to_string(ScoreWidth::W32), "int32");
}

TEST(Isa, NamesAndOrdering) {
  using simd::IsaKind;
  EXPECT_STREQ(simd::isa_name(IsaKind::Scalar), "scalar");
  EXPECT_STREQ(simd::isa_name(IsaKind::Avx512), "avx512");
  // Scalar is always available; best_available_isa returns something
  // available.
  EXPECT_TRUE(simd::isa_available(IsaKind::Scalar));
  EXPECT_TRUE(simd::isa_available(simd::best_available_isa()));
}

}  // namespace
