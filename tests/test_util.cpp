// Utility layer: aligned buffers, saturating arithmetic, GCUPS math.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/aligned_buffer.h"
#include "util/saturate.h"
#include "util/stopwatch.h"

using namespace aalign::util;

namespace {

TEST(AlignedBuffer, AlignmentAndSize) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<std::int16_t> b(n);
    EXPECT_EQ(b.size(), n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kVectorAlignment,
              0u);
  }
}

TEST(AlignedBuffer, ResizeKeepsCapacityNoShrink) {
  AlignedBuffer<std::int32_t> b(100);
  std::int32_t* p = b.data();
  b.resize(50);  // shrink: same allocation
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 50u);
  b.resize(100);  // regrow within capacity: same allocation
  EXPECT_EQ(b.data(), p);
}

TEST(AlignedBuffer, FillAndZero) {
  AlignedBuffer<std::int8_t> b(33);
  b.fill(7);
  for (auto v : b) EXPECT_EQ(v, 7);
  b.zero();
  for (auto v : b) EXPECT_EQ(v, 0);
}

TEST(AlignedBuffer, MoveSemantics) {
  AlignedBuffer<std::int32_t> a(10);
  a.fill(3);
  const std::int32_t* p = a.data();
  AlignedBuffer<std::int32_t> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.data(), nullptr);

  AlignedBuffer<std::int32_t> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c[0], 3);
}

TEST(Saturate, Int8Rails) {
  EXPECT_EQ(sat_add<std::int8_t>(100, 100), 127);
  EXPECT_EQ(sat_add<std::int8_t>(-100, -100), -128);
  EXPECT_EQ(sat_add<std::int8_t>(100, -100), 0);
  EXPECT_EQ(sat_sub<std::int8_t>(-100, 100), -128);
  EXPECT_EQ(sat_sub<std::int8_t>(100, -100), 127);
}

TEST(Saturate, Int16Rails) {
  EXPECT_EQ(sat_add<std::int16_t>(30000, 30000), 32767);
  EXPECT_EQ(sat_add<std::int16_t>(-30000, -30000), -32768);
  EXPECT_EQ(sat_sub<std::int16_t>(-30000, 30000), -32768);
}

TEST(Saturate, Int32Wraps) {
  // 32-bit is deliberately wrapping (matches _mm*_add_epi32); no UB.
  const std::int32_t max = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(sat_add<std::int32_t>(max, 1),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Gcups, Math) {
  EXPECT_DOUBLE_EQ(gcups(1000, 1000, 1e-3), 1.0);
  EXPECT_DOUBLE_EQ(gcups_cells(2'000'000'000, 1.0), 2.0);
  EXPECT_EQ(gcups(10, 10, 0.0), 0.0);  // no division by zero
}

TEST(Stopwatch, Monotonic) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GT(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds() * 1000.0 * 0.99);
}

}  // namespace
