// Shared helpers for the test suite: available-ISA enumeration, random
// sequence/config generation, and Farrar-safety filtering.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/config.h"
#include "score/matrices.h"
#include "simd/isa.h"

namespace aalign::test {

inline std::vector<simd::IsaKind> available_isas() {
  std::vector<simd::IsaKind> out;
  for (simd::IsaKind k : simd::kAllIsaKinds) {
    if (simd::isa_available(k)) out.push_back(k);
  }
  return out;
}

inline std::vector<std::uint8_t> random_protein(std::mt19937_64& rng,
                                                std::size_t len) {
  std::uniform_int_distribution<int> d(0, 19);  // real residues only
  std::vector<std::uint8_t> v(len);
  for (auto& c : v) c = static_cast<std::uint8_t>(d(rng));
  return v;
}

// A mutated copy: high-identity pairs stress the lazy-F loop and the scan
// correction much harder than independent random pairs.
inline std::vector<std::uint8_t> mutate(std::mt19937_64& rng,
                                        const std::vector<std::uint8_t>& src,
                                        double sub_rate, double indel_rate) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> d(0, 19);
  std::vector<std::uint8_t> out;
  out.reserve(src.size() + 8);
  for (std::uint8_t c : src) {
    const double r = u(rng);
    if (r < indel_rate / 2) continue;  // deletion
    if (r < indel_rate) {              // insertion
      out.push_back(static_cast<std::uint8_t>(d(rng)));
      out.push_back(c);
      continue;
    }
    out.push_back(u(rng) < sub_rate ? static_cast<std::uint8_t>(d(rng)) : c);
  }
  if (out.empty()) out.push_back(src.empty() ? 0 : src[0]);
  return out;
}

// Gap configurations used across the property sweeps. All satisfy
// farrar_safe() for BLOSUM62 (extend pairs sum to >= 4).
inline std::vector<Penalties> test_penalties() {
  return {
      Penalties::symmetric(10, 2),  // classic affine
      Penalties::symmetric(6, 4),   // heavy extend
      Penalties::symmetric(0, 4),   // linear
      Penalties{{12, 2}, {8, 3}},   // asymmetric affine
      Penalties{{0, 5}, {0, 2}},    // asymmetric linear
  };
}

}  // namespace aalign::test
