// Lock-order validator tests (util/lock_order.h + util/mutex.h):
//   - a consistent acquisition order across threads passes and records
//     acquired-after edges;
//   - a deliberate two-mutex inversion fires a violation carrying BOTH
//     stacks (the acquiring thread's and the one that established the
//     conflicting order);
//   - recursive/self-level misuse is detected;
//   - disabling the validator records nothing (the Release default), and
//     a compiled-out build (-DAALIGN_LOCK_ORDER=OFF) skips cleanly;
//   - the documented hierarchy in docs/concurrency.md replays clean: the
//     machine-readable block is the contract, this test is its executor.
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/lock_order.h"
#include "util/mutex.h"

namespace lock_order = aalign::util::lock_order;
using aalign::Mutex;
using aalign::MutexLock;

namespace {

// The violation handler is a plain function pointer, so captures go
// through static storage. Tests run serially within the binary.
std::vector<lock_order::Violation>& captured() {
  static auto* v = new std::vector<lock_order::Violation>();
  return *v;
}

void capture_handler(const lock_order::Violation& v) {
  captured().push_back(v);
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lock_order::compiled_in()) {
      GTEST_SKIP() << "validator compiled out (AALIGN_LOCK_ORDER=0)";
    }
    captured().clear();
    lock_order::reset();
    lock_order::set_enabled(true);
    prev_handler_ = lock_order::set_violation_handler(&capture_handler);
  }

  void TearDown() override {
    if (!lock_order::compiled_in()) return;
    lock_order::set_violation_handler(prev_handler_);
    lock_order::set_enabled(false);
    lock_order::reset();
  }

  lock_order::Handler prev_handler_ = nullptr;
};

bool stack_has(const std::vector<std::string>& stack, const std::string& s) {
  for (const std::string& e : stack) {
    if (e == s) return true;
  }
  return false;
}

TEST_F(LockOrderTest, ConsistentOrderAcrossThreadsPasses) {
  Mutex outer("test.outer");
  Mutex inner("test.inner");
  auto take_both = [&] {
    MutexLock a(outer);
    MutexLock b(inner);
  };
  std::thread t1(take_both);
  t1.join();
  std::thread t2(take_both);
  t2.join();
  take_both();
  EXPECT_TRUE(captured().empty());
  const auto s = lock_order::stats();
  EXPECT_GE(s.order_edges, 1u);  // test.outer -> test.inner
  EXPECT_EQ(s.violations, 0u);
}

TEST_F(LockOrderTest, InversionReportedWithBothStacks) {
  Mutex a("test.A");
  Mutex b("test.B");
  // Thread 1 establishes A -> B.
  std::thread establish([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  establish.join();
  ASSERT_TRUE(captured().empty());

  // Thread 2 inverts: B then A.
  std::thread invert([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  invert.join();

  ASSERT_EQ(captured().size(), 1u);
  const lock_order::Violation& v = captured().front();
  EXPECT_EQ(v.kind, lock_order::Violation::Kind::kCycle);
  EXPECT_EQ(v.acquiring, "test.A");
  EXPECT_EQ(v.conflicting, "test.B");
  // The inverting thread's stack: B held, A being acquired.
  EXPECT_TRUE(stack_has(v.current_stack, "test.A"));
  EXPECT_TRUE(stack_has(v.current_stack, "test.B"));
  ASSERT_GE(v.current_stack.size(), 2u);
  EXPECT_EQ(v.current_stack.front(), "test.B");
  EXPECT_EQ(v.current_stack.back(), "test.A");
  // The establishing acquisition's stack: A held, B acquired.
  ASSERT_GE(v.prior_stack.size(), 2u);
  EXPECT_EQ(v.prior_stack.front(), "test.A");
  EXPECT_EQ(v.prior_stack.back(), "test.B");
  // The human-readable report names both stacks.
  const std::string report = v.to_string();
  EXPECT_NE(report.find("test.A"), std::string::npos);
  EXPECT_NE(report.find("test.B"), std::string::npos);
  EXPECT_NE(report.find("this thread's lock stack"), std::string::npos);
  EXPECT_NE(report.find("conflicting order first recorded"),
            std::string::npos);
  EXPECT_EQ(lock_order::stats().violations, 1u);
}

TEST_F(LockOrderTest, TransitiveInversionDetected) {
  Mutex a("test.t.A");
  Mutex b("test.t.B");
  Mutex c("test.t.C");
  {
    // A -> B, then B -> C: order A before C is implied transitively.
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);
  }
  ASSERT_TRUE(captured().empty());
  {
    MutexLock lc(c);
    MutexLock la(a);  // violates the transitive A -> C order
  }
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured().front().kind, lock_order::Violation::Kind::kCycle);
  EXPECT_EQ(captured().front().acquiring, "test.t.A");
}

TEST_F(LockOrderTest, RecursiveAcquisitionDetected) {
  // Exercised through the raw hook: actually double-locking an
  // aalign::Mutex would deadlock on the underlying std::mutex.
  int dummy = 0;
  lock_order::on_acquire(&dummy, "test.rec");
  lock_order::on_acquire(&dummy, "test.rec");
  ASSERT_FALSE(captured().empty());
  EXPECT_EQ(captured().front().kind,
            lock_order::Violation::Kind::kRecursive);
  lock_order::on_release(&dummy);
  lock_order::on_release(&dummy);
}

TEST_F(LockOrderTest, SameLevelNestingDetected) {
  // Two distinct instances of the same hierarchy level must never nest:
  // two threads doing it with swapped instances would deadlock.
  Mutex m1("test.same_level");
  Mutex m2("test.same_level");
  MutexLock l1(m1);
  MutexLock l2(m2);
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured().front().kind,
            lock_order::Violation::Kind::kSelfLevel);
}

TEST_F(LockOrderTest, DisabledValidatorRecordsNothing) {
  // The Release-build default: hooks short-circuit on the enabled flag.
  lock_order::set_enabled(false);
  lock_order::reset();
  Mutex outer("test.off.outer");
  Mutex inner("test.off.inner");
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  {
    MutexLock b(inner);
    MutexLock a(outer);  // inverted - but nobody is watching
  }
  const auto s = lock_order::stats();
  EXPECT_EQ(s.order_edges, 0u);
  EXPECT_EQ(s.violations, 0u);
  EXPECT_TRUE(captured().empty());
}

// Reads the machine-readable hierarchy block out of docs/concurrency.md:
//
//   <!-- lock-order:hierarchy
//   <level name, outermost first>
//   ...
//   -->
std::vector<std::string> documented_hierarchy() {
  const std::string path = std::string(AALIGN_DOCS_DIR) + "/concurrency.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> levels;
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    // Trim trailing CR / surrounding spaces.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    const std::string t = line.substr(start);
    if (t == "<!-- lock-order:hierarchy") {
      in_block = true;
      continue;
    }
    if (in_block && t == "-->") break;
    if (in_block && !t.empty() && t[0] != '#') levels.push_back(t);
  }
  return levels;
}

TEST_F(LockOrderTest, DocumentedHierarchyReplaysClean) {
  const std::vector<std::string> levels = documented_hierarchy();
  ASSERT_GE(levels.size(), 5u)
      << "docs/concurrency.md lock-order:hierarchy block missing or empty";

  // Build one mutex per documented level and acquire the whole chain
  // nested in documented order: every adjacent (and transitive) pair
  // becomes an acquired-after edge, none may conflict.
  std::vector<std::unique_ptr<Mutex>> mus;
  mus.reserve(levels.size());
  for (const std::string& name : levels) {
    mus.push_back(std::make_unique<Mutex>(name.c_str()));
  }
  for (auto& m : mus) m->lock();
  for (auto it = mus.rbegin(); it != mus.rend(); ++it) (*it)->unlock();
  EXPECT_TRUE(captured().empty())
      << "documented hierarchy is internally inconsistent: "
      << captured().front().to_string();
  EXPECT_GE(lock_order::stats().order_edges, levels.size() - 1);

  // And the reverse of any adjacent pair must now be flagged.
  {
    MutexLock inner(*mus[1]);
    MutexLock outer(*mus[0]);
  }
  EXPECT_EQ(captured().size(), 1u);
}

TEST(LockOrderCompileOut, StubsAreCallable) {
  // In a -DAALIGN_LOCK_ORDER=OFF build the hooks are empty inline stubs;
  // this asserts they stay callable and cost-free to reach. (In a normal
  // build it just exercises the disabled-by-default Release path.)
  if (lock_order::compiled_in()) {
    GTEST_SKIP() << "validator compiled in; stub surface not in effect";
  }
  EXPECT_FALSE(lock_order::enabled());
  lock_order::set_enabled(true);  // must stay a no-op
  EXPECT_FALSE(lock_order::enabled());
  int dummy = 0;
  lock_order::on_acquire(&dummy, "stub");
  lock_order::on_release(&dummy);
  const auto s = lock_order::stats();
  EXPECT_EQ(s.order_edges, 0u);
  EXPECT_EQ(s.violations, 0u);
}

TEST(LockOrderMutex, NamesAreExposed) {
  Mutex m("test.named");
  EXPECT_STREQ(m.name(), "test.named");
}

}  // namespace
