// Banded global alignment (exactness guarantees, lower-bound property)
// and Karlin-Altschul statistics (lambda root, bit scores, E-values).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/banded.h"
#include "core/sequential.h"
#include "score/evalue.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

AlignConfig global_cfg(Penalties pen) {
  AlignConfig cfg;
  cfg.kind = AlignKind::Global;
  cfg.pen = pen;
  return cfg;
}

TEST(Banded, WideBandEqualsOracle) {
  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen = Penalties::symmetric(10, 2);
  std::mt19937_64 rng(71);
  for (int iter = 0; iter < 8; ++iter) {
    const auto q = test::random_protein(rng, 60 + iter * 23);
    const auto s = test::mutate(rng, q, 0.2, 0.05);
    const long full =
        core::align_sequential(m, global_cfg(pen), q, s);
    const long band = static_cast<long>(std::max(q.size(), s.size()));
    EXPECT_EQ(core::align_banded_global(m, pen, q, s, band), full);
  }
}

TEST(Banded, NarrowBandIsLowerBoundAndMonotone) {
  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen = Penalties::symmetric(10, 2);
  std::mt19937_64 rng(72);
  const auto q = test::random_protein(rng, 300);
  const auto s = test::mutate(rng, q, 0.3, 0.15);  // gappy pair
  const long full = core::align_sequential(m, global_cfg(pen), q, s);

  long prev = std::numeric_limits<long>::min();
  const long diff = std::labs(static_cast<long>(q.size()) -
                              static_cast<long>(s.size()));
  for (long band = diff + 1; band <= 300; band *= 2) {
    const long banded = core::align_banded_global(m, pen, q, s, band);
    EXPECT_LE(banded, full) << "band " << band;
    EXPECT_GE(banded, prev) << "band " << band;  // monotone in band width
    prev = banded;
  }
  EXPECT_EQ(prev, full);  // widest tested band reaches the optimum
}

TEST(Banded, AutoIsExact) {
  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen = Penalties::symmetric(10, 2);
  std::mt19937_64 rng(73);
  for (int iter = 0; iter < 6; ++iter) {
    const auto q = test::random_protein(rng, 200 + iter * 101);
    const auto s = test::mutate(rng, q, 0.05 + 0.1 * iter, 0.03);
    EXPECT_EQ(core::align_banded_global_auto(m, pen, q, s),
              core::align_sequential(m, global_cfg(pen), q, s))
        << "iter " << iter;
  }
}

TEST(Banded, RejectsTooNarrowBand) {
  const auto& alpha = score::Alphabet::protein();
  const auto& m = score::ScoreMatrix::blosum62();
  EXPECT_THROW(core::align_banded_global(m, Penalties::symmetric(10, 2),
                                         alpha.encode("A"),
                                         alpha.encode("AAAAAAAA"), 3),
               std::invalid_argument);
}

TEST(Evalue, Blosum62LambdaMatchesPublishedValue) {
  // Karlin-Altschul ungapped lambda for BLOSUM62 with Robinson-Robinson
  // frequencies is ~0.318 nats (the canonical BLAST value is 0.3176).
  const auto bg = score::protein_background();
  const score::KarlinParams p =
      score::compute_ungapped_params(score::ScoreMatrix::blosum62(), bg);
  EXPECT_NEAR(p.lambda, 0.3176, 0.01);
  EXPECT_GT(p.H, 0.0);
}

TEST(Evalue, LambdaRootProperty) {
  // The defining identity: sum p_i p_j exp(lambda * s_ij) == 1.
  const auto bg = score::protein_background();
  for (const score::ScoreMatrix* m :
       {&score::ScoreMatrix::blosum62(), &score::ScoreMatrix::blosum45(),
        &score::ScoreMatrix::blosum80()}) {
    const score::KarlinParams p = score::compute_ungapped_params(*m, bg);
    double total = 0.0;
    for (int i = 0; i < 20; ++i) {
      for (int j = 0; j < 20; ++j) {
        total += bg[static_cast<std::size_t>(i)] *
                 bg[static_cast<std::size_t>(j)] *
                 std::exp(p.lambda * m->at(i, j));
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << m->name();
  }
}

TEST(Evalue, RejectsNonNegativeExpectation) {
  // A match-heavy matrix with positive expected score has no lambda.
  const score::ScoreMatrix m = score::ScoreMatrix::dna(5, 1);
  std::array<double, 32> bg{};
  for (int i = 0; i < 4; ++i) bg[static_cast<std::size_t>(i)] = 0.25;
  EXPECT_THROW(score::compute_ungapped_params(m, bg), std::invalid_argument);
}

TEST(Evalue, BitScoreAndEvalueBehaviour) {
  const score::KarlinParams p =
      score::default_protein_params(score::ScoreMatrix::blosum62());
  // Bit score grows linearly with raw score.
  EXPECT_GT(score::bit_score(p, 100), score::bit_score(p, 50));
  // E-value decays with score, grows with search space.
  EXPECT_LT(score::e_value(p, 100, 300, 1000000),
            score::e_value(p, 50, 300, 1000000));
  EXPECT_LT(score::e_value(p, 100, 300, 1000000),
            score::e_value(p, 100, 300, 100000000));
  // A strong hit in a small database is significant.
  EXPECT_LT(score::e_value(p, 300, 300, 1000000), 1e-6);
}

}  // namespace
