// Inter-sequence vectorization: per-lane independence, batch padding, and
// tail handling must all preserve exact agreement with the sequential
// oracle for every subject in the database.
#include <gtest/gtest.h>

#include <random>

#include "core/inter_engine.h"
#include "core/sequential.h"
#include "search/inter_search.h"
#include "seq/generator.h"
#include "seq/pairgen.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

class InterSequence : public testing::TestWithParam<simd::IsaKind> {};

TEST_P(InterSequence, MatchesOracleOnMixedLengthDatabase) {
  const simd::IsaKind isa = GetParam();
  if (core::get_inter_engine(isa) == nullptr) GTEST_SKIP();

  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen = Penalties::symmetric(10, 2);
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = pen;

  seq::SequenceGenerator gen(61);
  const seq::Sequence qseq = gen.protein(120, "Q");
  const auto query = score::Alphabet::protein().encode(qseq.residues);

  // Deliberately awkward database size (not a lane multiple) with wildly
  // mixed lengths and one strong homolog.
  seq::Database db(score::Alphabet::protein(),
                   gen.protein_database(45, 80.0, 0.8, 5, 700));
  db.add(seq::encode(
      score::Alphabet::protein(),
      seq::make_similar_subject(gen, qseq,
                                {seq::Level::Hi, seq::Level::Hi})));

  search::InterSequenceSearch inter(m, pen, isa, 2);
  const search::SearchResult res = inter.search(query, db);
  ASSERT_EQ(res.scores.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(res.scores[i],
              core::align_sequential(m, cfg, query, db.by_original(i).view()))
        << "subject " << i << " len " << db.by_original(i).size();
  }
}

TEST_P(InterSequence, SingleSubjectBatch) {
  const simd::IsaKind isa = GetParam();
  if (core::get_inter_engine(isa) == nullptr) GTEST_SKIP();

  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen{{12, 2}, {8, 3}};  // asymmetric
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = pen;

  std::mt19937_64 rng(62);
  const auto query = test::random_protein(rng, 70);

  seq::Database db;
  db.add(seq::EncodedSequence{"only", test::random_protein(rng, 33)});

  search::InterSequenceSearch inter(m, pen, isa, 1);
  const auto res = inter.search(query, db);
  ASSERT_EQ(res.scores.size(), 1u);
  EXPECT_EQ(res.scores[0],
            core::align_sequential(m, cfg, query, db[0].view()));
}

TEST_P(InterSequence, AgreesWithIntraSequenceSearch) {
  const simd::IsaKind isa = GetParam();
  if (core::get_inter_engine(isa) == nullptr) GTEST_SKIP();

  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen = Penalties::symmetric(10, 2);
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = pen;

  seq::SequenceGenerator gen(63);
  const auto query =
      score::Alphabet::protein().encode(gen.protein(150).residues);
  seq::Database db(score::Alphabet::protein(),
                   gen.protein_database(70, 100.0));

  search::InterSequenceSearch inter(m, pen, isa, 2);
  seq::Database db1 = db;
  const auto r_inter = inter.search(query, db1);

  search::SearchOptions opt;
  opt.threads = 2;
  opt.query.isa = isa;
  search::DatabaseSearch intra(m, cfg, opt);
  seq::Database db2 = db;
  const auto r_intra = intra.search(query, db2);

  EXPECT_EQ(r_inter.scores, r_intra.scores);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, InterSequence,
                         testing::ValuesIn(test::available_isas()),
                         [](const testing::TestParamInfo<simd::IsaKind>& i) {
                           return std::string(simd::isa_name(i.param));
                         });

}  // namespace
