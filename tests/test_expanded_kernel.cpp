// The --expand output mode end to end: at build time aalignc emitted
// fully expanded vector code constructs (Alg. 2/3 with constants folded
// and linear-gap statements dropped) for all four paradigm quadrants; this
// TU compiles them for every backend (it is built with all ISA flags) and
// verifies both strategies against the sequential oracle.
#include <gtest/gtest.h>

#include <random>

#include "core/sequential.h"
#include "simd/vec_avx2.h"
#include "simd/vec_avx512.h"
#include "simd/vec_scalar.h"
#include "simd/vec_sse41.h"

#include "expanded_nw_affine.h"
#include "expanded_nw_linear.h"
#include "expanded_sw_affine.h"
#include "expanded_sw_linear.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

template <class Ops, class AlignFn>
void check_quadrant(AlignFn align_fn, AlignKind kind, Penalties pen,
                    unsigned seed) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = kind;
  cfg.pen = pen;

  std::mt19937_64 rng(seed);
  for (int iter = 0; iter < 6; ++iter) {
    const auto q = test::random_protein(rng, 30 + iter * 41);
    const auto s = test::mutate(rng, q, 0.35, 0.1);
    const long expect = core::align_sequential(m, cfg, q, s);
    EXPECT_EQ(align_fn(q, s, /*use_scan=*/false), expect)
        << "iterate iter " << iter;
    EXPECT_EQ(align_fn(q, s, /*use_scan=*/true), expect)
        << "scan iter " << iter;
  }
}

template <class Ops>
void check_all_quadrants(unsigned seed) {
  check_quadrant<Ops>(
      [](auto q, auto s, bool scan) {
        return aalign_expanded_sw_affine::align<Ops>(q, s, scan);
      },
      AlignKind::Local, Penalties::symmetric(10, 2), seed);
  check_quadrant<Ops>(
      [](auto q, auto s, bool scan) {
        return aalign_expanded_sw_linear::align<Ops>(q, s, scan);
      },
      AlignKind::Local, Penalties::symmetric(0, 4), seed + 1);
  check_quadrant<Ops>(
      [](auto q, auto s, bool scan) {
        return aalign_expanded_nw_affine::align<Ops>(q, s, scan);
      },
      AlignKind::Global, Penalties::symmetric(10, 2), seed + 2);
  check_quadrant<Ops>(
      [](auto q, auto s, bool scan) {
        return aalign_expanded_nw_linear::align<Ops>(q, s, scan);
      },
      AlignKind::Global, Penalties::symmetric(0, 4), seed + 3);
}

TEST(ExpandedKernel, Scalar) {
  check_all_quadrants<simd::VecOps<std::int32_t, simd::ScalarTag>>(100);
}

#if defined(AALIGN_HAVE_SSE41)
TEST(ExpandedKernel, Sse41) {
  if (!simd::isa_available(simd::IsaKind::Sse41)) GTEST_SKIP();
  check_all_quadrants<simd::VecOps<std::int32_t, simd::Sse41Tag>>(200);
}
#endif

#if defined(AALIGN_HAVE_AVX2)
TEST(ExpandedKernel, Avx2) {
  if (!simd::isa_available(simd::IsaKind::Avx2)) GTEST_SKIP();
  check_all_quadrants<simd::VecOps<std::int32_t, simd::Avx2Tag>>(300);
}
#endif

#if defined(AALIGN_HAVE_AVX512)
TEST(ExpandedKernel, Avx512) {
  if (!simd::isa_available(simd::IsaKind::Avx512)) GTEST_SKIP();
  check_all_quadrants<simd::VecOps<std::int32_t, simd::Avx512Tag>>(400);
}
#endif

}  // namespace
