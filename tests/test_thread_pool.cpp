// Work-stealing pool stress tests: exact coverage, thread-count
// invariance of results written through the pool, exception propagation
// under concurrency, and deliberate hammering of the steal path (verified
// through PoolStats). Runs under TSan in CI (ctest label "stress").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "search/thread_pool.h"

using namespace aalign;

namespace {

TEST(ThreadPoolStress, CoversAllIndicesExactlyOnce) {
  for (int threads : {1, 2, 3, 8, 16}) {
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{17}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(count);
      search::PoolStats stats;
      search::parallel_for_work_stealing(
          count, threads,
          [&](int id, std::size_t i) {
            EXPECT_GE(id, 0);
            EXPECT_LT(id, threads);
            hits[i].fetch_add(1, std::memory_order_relaxed);
          },
          &stats);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "item " << i << " threads " << threads;
      }
    }
  }
}

TEST(ThreadPoolStress, DynamicShimCoversAllIndices) {
  std::vector<std::atomic<int>> hits(501);
  search::parallel_for_dynamic(
      hits.size(), 7, [&](int, std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Results produced through the pool must not depend on the worker count:
// each item writes to its own slot, so the assembled vector is
// bit-identical for 1, 2, and 8 threads.
TEST(ThreadPoolStress, ThreadCountInvariance) {
  constexpr std::size_t kCount = 4096;
  std::vector<std::uint64_t> first;
  for (int threads : {1, 2, 8}) {
    std::vector<std::uint64_t> out(kCount, 0);
    search::parallel_for_work_stealing(kCount, threads,
                                       [&](int, std::size_t i) {
                                         // Deterministic per-item work.
                                         std::uint64_t h = i * 0x9E3779B97F4A7C15ull;
                                         h ^= h >> 31;
                                         out[i] = h;
                                       });
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(out, first) << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolStress, PropagatesExceptions) {
  EXPECT_THROW(
      search::parallel_for_work_stealing(
          200, 4,
          [&](int, std::size_t i) {
            if (i == 37) throw std::runtime_error("item 37");
          }),
      std::runtime_error);

  // Serial path (threads == 1) must propagate too.
  EXPECT_THROW(search::parallel_for_work_stealing(
                   10, 1,
                   [&](int, std::size_t i) {
                     if (i == 3) throw std::logic_error("serial");
                   }),
               std::logic_error);
}

TEST(ThreadPoolStress, ExceptionAbandonsRemainingWorkButJoins) {
  // After the throw, the pool must abort the remaining items (not hang)
  // and still join every worker before rethrowing.
  std::atomic<std::size_t> executed{0};
  try {
    search::parallel_for_work_stealing(100000, 4, [&](int, std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  // Some items ran, but the abort kept the pool from draining all 100k.
  EXPECT_LT(executed.load(), 100000u);
}

// Hammer the steal path: striped distribution gives worker 0 all the slow
// items and worker 1 all the instant ones, so worker 1 must drain its own
// deque and then steal half of worker 0's backlog (repeatedly).
TEST(ThreadPoolStress, SlowOwnerForcesSteals) {
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  search::PoolStats stats;
  search::parallel_for_work_stealing(
      kCount, 2,
      [&](int, std::size_t i) {
        if (i % 2 == 0) {  // worker 0's stripe: slow
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      &stats);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(stats.steals, 1u);
  EXPECT_GE(stats.stolen_items, stats.steals);  // each steal moves >= 1 item
}

// Many tiny items across many workers: exercises concurrent pop/steal
// races as hard as this machine allows. The assertion is exact coverage
// plus a coherent stats invariant; TSan turns any locking mistake into a
// hard failure.
TEST(ThreadPoolStress, TinyItemHammer) {
  constexpr std::size_t kCount = 20000;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<std::uint8_t>> hits(kCount);
    std::atomic<std::uint64_t> sum{0};
    search::PoolStats stats;
    search::parallel_for_work_stealing(
        kCount, 8,
        [&](int, std::size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
          sum.fetch_add(i, std::memory_order_relaxed);
        },
        &stats);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " item " << i;
    }
    EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
    EXPECT_LE(stats.stolen_items, kCount);  // can't migrate more than exist
  }
}

TEST(ThreadPoolStress, SerialPathResetsStats) {
  search::PoolStats stats;
  stats.steals = 99;
  stats.stolen_items = 99;
  stats.steal_scans = 99;
  search::parallel_for_work_stealing(5, 1, [](int, std::size_t) {}, &stats);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.stolen_items, 0u);
  EXPECT_EQ(stats.steal_scans, 0u);
}

TEST(ThreadPoolStress, DefaultThreadCountPositive) {
  EXPECT_GE(search::default_thread_count(), 1);
}

}  // namespace
