// The accumulating diagnostic engine (paper Sec. V-D verification pass):
// multiple independent errors per run, stable AA0xx codes with source
// spans, golden-file fixtures under data/diagnostics/, JSON export shape,
// and the scan-eligibility downgrade reaching the emitters.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "codegen/analyze.h"
#include "codegen/emit.h"
#include "codegen/sema.h"
#include "obs/json.h"

using namespace aalign::codegen;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

#ifndef AALIGN_DATA_DIR
#define AALIGN_DATA_DIR "data"
#endif
std::string fixture_path(const std::string& name) {
  return std::string(AALIGN_DATA_DIR) + "/diagnostics/" + name;
}

// (code, severity, line, col) - the stable identity of a diagnostic.
using Key = std::tuple<std::string, std::string, int, int>;

std::multiset<Key> keys_of(const DiagnosticEngine& diags) {
  std::multiset<Key> out;
  for (const Diagnostic& d : diags.diagnostics()) {
    out.insert(Key{d.code, to_string(d.severity), d.span.line, d.span.col});
  }
  return out;
}

// Golden format: one "CODE severity line col" per line, '#' comments.
std::multiset<Key> load_golden(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing golden file " << path;
  std::multiset<Key> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string code, severity;
    int ln = 0, col = 0;
    row >> code >> severity >> ln >> col;
    out.insert(Key{code, severity, ln, col});
  }
  return out;
}

DiagnosticEngine verify_fixture(const std::string& name, KernelSpec* spec_out =
                                                             nullptr) {
  DiagnosticEngine diags;
  const Program p = parse(read_file(fixture_path(name)), diags);
  KernelSpec spec;
  if (!diags.has_errors()) spec = verify(p, diags);
  if (spec_out != nullptr) *spec_out = spec;
  return diags;
}

TEST(Diagnostics, GoldenBadDependency) {
  const DiagnosticEngine diags = verify_fixture("bad_dependency.c");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_GE(diags.error_count(), 2) << "one run must surface every error";
  EXPECT_EQ(keys_of(diags), load_golden(fixture_path("bad_dependency.expected")));
}

TEST(Diagnostics, GoldenBadGapShape) {
  const DiagnosticEngine diags = verify_fixture("bad_gap_shape.c");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(keys_of(diags), load_golden(fixture_path("bad_gap_shape.expected")));
}

TEST(Diagnostics, GoldenUnusedConstIsWarningOnly) {
  const DiagnosticEngine diags = verify_fixture("warn_unused_const.c");
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.warning_count(), 1);
  EXPECT_EQ(keys_of(diags),
            load_golden(fixture_path("warn_unused_const.expected")));
}

TEST(Diagnostics, GoldenScanIneligibleIsWarningOnly) {
  KernelSpec spec;
  const DiagnosticEngine diags = verify_fixture("warn_scan_ineligible.c", &spec);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(keys_of(diags),
            load_golden(fixture_path("warn_scan_ineligible.expected")));
  EXPECT_FALSE(spec.scan_eligible);
}

TEST(Diagnostics, ScanIneligibleSpecPinsEmittersToIterate) {
  KernelSpec spec;
  verify_fixture("warn_scan_ineligible.c", &spec);
  ASSERT_FALSE(spec.scan_eligible);
  const std::string cpp = emit_cpp(spec);
  EXPECT_NE(cpp.find("aalign::Strategy::StripedIterate"), std::string::npos);
  EXPECT_EQ(cpp.find("aalign::Strategy::Hybrid"), std::string::npos);
  const std::string expanded = emit_expanded_kernel(spec);
  EXPECT_NE(expanded.find("return striped_iterate<Ops>(prof, subject);"),
            std::string::npos);
}

TEST(Diagnostics, ScanEligibleSpecKeepsHybridDefault) {
  DiagnosticEngine diags;
  const Program p = parse(
      read_file(std::string(AALIGN_DATA_DIR) + "/paradigm/sw_affine.c"), diags);
  const KernelSpec spec = verify(p, diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.warning_count(), 0);
  EXPECT_TRUE(spec.scan_eligible);
  EXPECT_NE(emit_cpp(spec).find("aalign::Strategy::Hybrid"),
            std::string::npos);
}

TEST(Diagnostics, LexerAccumulatesAndParserContinues) {
  // Two unknown characters: both must be reported in one run, and the
  // parser must still see the surviving tokens.
  DiagnosticEngine diags;
  const Program p = parse("const int A = @4;\nconst int B = $2;", diags);
  int aa001 = 0;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.code == "AA001") ++aa001;
  }
  EXPECT_EQ(aa001, 2);
  // Report-and-skip: the digits after the bad characters still lex.
  EXPECT_EQ(p.consts.at("A"), 4);
  EXPECT_EQ(p.consts.at("B"), 2);
}

TEST(Diagnostics, ParserRecoversAcrossStatements) {
  // Three independent parse errors; one run reports all of them.
  DiagnosticEngine diags;
  parse("const float A = 1;\n"
        "const int B = ;\n"
        "for (i = 0; j < n; i++) T[i][0] = 0;",
        diags);
  EXPECT_GE(diags.error_count(), 3);
  std::set<std::string> codes;
  for (const Diagnostic& d : diags.diagnostics()) codes.insert(d.code);
  EXPECT_TRUE(codes.count("AA003"));  // expected 'int' after 'const'
  EXPECT_TRUE(codes.count("AA005"));  // expected constant value
  EXPECT_TRUE(codes.count("AA006"));  // condition must test the loop var
}

TEST(Diagnostics, RenderShowsCaretAndSummary) {
  const std::string src = "const int A = @4;";
  DiagnosticEngine diags;
  parse(src, diags);
  const std::string text = diags.render(src, "kernel.c");
  EXPECT_NE(text.find("kernel.c:1:15: error[AA001]"), std::string::npos);
  EXPECT_NE(text.find("const int A = @4;"), std::string::npos);
  EXPECT_NE(text.find("              ^"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s) generated."),
            std::string::npos);
}

TEST(Diagnostics, FixitRendersAsNote) {
  const DiagnosticEngine diags = verify_fixture("bad_dependency.c");
  const std::string text =
      diags.render(read_file(fixture_path("bad_dependency.c")),
                   "bad_dependency.c");
  EXPECT_NE(text.find("note: every cell reference must be one of"),
            std::string::npos);
}

TEST(Diagnostics, JsonShapeRoundTripsThroughObsParser) {
  const DiagnosticEngine diags = verify_fixture("bad_dependency.c");
  const std::string dumped = diags.to_json("bad_dependency.c").dump(2);

  std::string err;
  const aalign::obs::Json doc = aalign::obs::Json::parse(dumped, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc.find("schema")->as_string(), "aalign.diagnostics");
  EXPECT_EQ(doc.find("schema_version")->as_int(), 1);
  EXPECT_EQ(doc.find("file")->as_string(), "bad_dependency.c");
  EXPECT_EQ(doc.find("errors")->as_int(), diags.error_count());
  EXPECT_EQ(doc.find("warnings")->as_int(), 0);
  const aalign::obs::Json* list = doc.find("diagnostics");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(static_cast<int>(list->size()), diags.error_count());
  const std::vector<Diagnostic> sorted = diags.sorted();
  for (std::size_t i = 0; i < list->size(); ++i) {
    const aalign::obs::Json& row = list->at(i);
    EXPECT_EQ(row.find("code")->as_string(), sorted[i].code);
    EXPECT_EQ(row.find("severity")->as_string(), "error");
    EXPECT_EQ(row.find("line")->as_int(), sorted[i].span.line);
    EXPECT_EQ(row.find("col")->as_int(), sorted[i].span.col);
    EXPECT_NE(row.find("message"), nullptr);
  }
}

TEST(Diagnostics, ParadigmInputsVerifyClean) {
  for (const char* name :
       {"sw_affine.c", "sw_linear.c", "nw_affine.c", "nw_linear.c"}) {
    DiagnosticEngine diags;
    const Program p = parse(
        read_file(std::string(AALIGN_DATA_DIR) + "/paradigm/" + name), diags);
    verify(p, diags);
    EXPECT_FALSE(diags.has_errors()) << name;
    EXPECT_EQ(diags.warning_count(), 0) << name;
  }
}

TEST(Diagnostics, CompatWrapperThrowsFirstErrorWithCode) {
  try {
    analyze_source(read_file(fixture_path("bad_dependency.c")));
    FAIL() << "expected CodegenError";
  } catch (const CodegenError& e) {
    // The wrapper carries the location-first error of the full run.
    EXPECT_EQ(e.code, "AA025");
    EXPECT_GT(e.line, 0);
  }
}

}  // namespace
