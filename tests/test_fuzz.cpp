// Randomized cross-checks ("fuzz"): random Farrar-safe configurations,
// degenerate inputs (homopolymers, wildcards, stop codons), DNA alphabet,
// shape extremes, and a differential search harness that cross-checks the
// intra-sequence engine (every ISA x start width), the inter-sequence
// engine (every backend x precision-ladder start tier), and the scalar
// oracle against each other on seeded random databases.
//
// AALIGN_FUZZ_ROUNDS scales the differential harness round count (default
// 3); sanitizer CI jobs raise it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/aligner.h"
#include "core/engine.h"
#include "core/inter_engine.h"
#include "core/sequential.h"
#include "score/matrices.h"
#include "search/database_search.h"
#include "search/inter_search.h"
#include "seq/generator.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("AALIGN_FUZZ_ROUNDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

TEST(Fuzz, RandomConfigurationsMatchOracle) {
  std::mt19937_64 rng(0xF055);
  const auto& m = score::ScoreMatrix::blosum62();
  std::uniform_int_distribution<int> open_d(1, 20), ext_d(2, 8);
  std::uniform_int_distribution<int> kind_d(0, 4), len_d(1, 400);
  std::uniform_int_distribution<int> strat_d(0, 2);

  const auto isas = test::available_isas();
  for (int iter = 0; iter < 60; ++iter) {
    AlignConfig cfg;
    cfg.kind = static_cast<AlignKind>(kind_d(rng));
    // Linear systems need open == 0 on both axes.
    const bool linear = (iter % 3) == 0;
    cfg.pen.query = GapScheme{linear ? 0 : open_d(rng), ext_d(rng)};
    cfg.pen.subject = GapScheme{linear ? 0 : open_d(rng), ext_d(rng)};
    if (!farrar_safe(m, cfg.pen)) continue;

    const auto q = test::random_protein(rng, static_cast<std::size_t>(len_d(rng)));
    const auto s = test::random_protein(rng, static_cast<std::size_t>(len_d(rng)));
    const long expect = core::align_sequential(m, cfg, q, s);

    AlignOptions opt;
    opt.isa = isas[static_cast<std::size_t>(iter) % isas.size()];
    opt.width = ScoreWidth::W32;
    opt.strategy = static_cast<Strategy>(1 + strat_d(rng));
    const AlignResult r = align_pair(m, cfg, q, s, opt);
    ASSERT_EQ(r.score, expect)
        << "iter " << iter << " kind " << to_string(cfg.kind) << " strat "
        << to_string(r.strategy) << " isa " << simd::isa_name(r.isa)
        << " pen " << cfg.pen.query.open << "/" << cfg.pen.query.extend
        << " " << cfg.pen.subject.open << "/" << cfg.pen.subject.extend;
  }
}

TEST(Fuzz, DegenerateSequences) {
  const auto& alpha = score::Alphabet::protein();
  const auto& m = score::ScoreMatrix::blosum62();

  const std::vector<std::string> inputs = {
      "A",
      "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",  // homopolymer
      "XXXXXXXXXX",                                         // all wildcard
      "W*W*W*W*W*",                                         // stop codons
      "ARNDCQEGHILKMFPSTWYVBZX*",                           // full alphabet
  };

  for (AlignKind kind :
       {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
          AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
    AlignConfig cfg;
    cfg.kind = kind;
    cfg.pen = Penalties::symmetric(10, 2);
    for (const auto& qs : inputs) {
      for (const auto& ss : inputs) {
        const auto q = alpha.encode(qs);
        const auto s = alpha.encode(ss);
        const long expect = core::align_sequential(m, cfg, q, s);
        for (Strategy strat : {Strategy::StripedIterate,
                               Strategy::StripedScan, Strategy::Hybrid}) {
          AlignOptions opt;
          opt.strategy = strat;
          opt.width = ScoreWidth::W32;
          ASSERT_EQ(align_pair(m, cfg, q, s, opt).score, expect)
              << to_string(kind) << " " << to_string(strat) << " '" << qs
              << "' vs '" << ss << "'";
        }
      }
    }
  }
}

TEST(Fuzz, DnaAlignment) {
  const score::ScoreMatrix dna = score::ScoreMatrix::dna(5, 4);
  const auto& alpha = dna.alphabet();
  std::mt19937_64 rng(404);
  std::uniform_int_distribution<int> base(0, 3);

  for (AlignKind kind : {AlignKind::Local, AlignKind::Global}) {
    AlignConfig cfg;
    cfg.kind = kind;
    cfg.pen = Penalties::symmetric(10, 4);  // farrar-safe for min=-4
    ASSERT_TRUE(farrar_safe(dna, cfg.pen));
    for (int iter = 0; iter < 8; ++iter) {
      std::vector<std::uint8_t> q(50 + iter * 31), s(80 + iter * 17);
      for (auto& c : q) c = static_cast<std::uint8_t>(base(rng));
      for (auto& c : s) c = static_cast<std::uint8_t>(base(rng));
      // Sprinkle Ns.
      q[q.size() / 2] = static_cast<std::uint8_t>(alpha.wildcard());

      const long expect = core::align_sequential(dna, cfg, q, s);
      for (Strategy strat : {Strategy::StripedIterate, Strategy::StripedScan,
                             Strategy::Hybrid}) {
        AlignOptions opt;
        opt.strategy = strat;
        ASSERT_EQ(align_pair(dna, cfg, q, s, opt).score, expect)
            << to_string(kind) << " " << to_string(strat);
      }
    }
  }
}

TEST(Fuzz, ExtremeShapeRatios) {
  const auto& m = score::ScoreMatrix::blosum62();
  std::mt19937_64 rng(7777);
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);

  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 2000}, {2000, 1}, {2, 1500}, {1500, 2}, {3000, 64}, {64, 3000}};
  for (AlignKind kind :
       {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
          AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
    cfg.kind = kind;
    for (const auto& [mm, nn] : shapes) {
      const auto q = test::random_protein(rng, mm);
      const auto s = test::random_protein(rng, nn);
      const long expect = core::align_sequential(m, cfg, q, s);
      AlignOptions opt;
      opt.width = ScoreWidth::W32;
      opt.strategy = Strategy::Hybrid;
      ASSERT_EQ(align_pair(m, cfg, q, s, opt).score, expect)
          << to_string(kind) << " " << mm << "x" << nn;
    }
  }
}

// Differential search harness: one seeded database per round, containing
// every stride-boundary length (segment counts flip at multiples of the
// lane width), the empty and single-residue subjects, random-length
// subjects, and a high-identity homolog that forces narrow-precision
// saturation. Every engine variant must reproduce the scalar oracle
// score-for-score.
TEST(Fuzz, DifferentialSearchHarness) {
  const auto& m = score::ScoreMatrix::blosum62();
  const auto isas = test::available_isas();
  const int rounds = fuzz_rounds(3);

  for (int round = 0; round < rounds; ++round) {
    std::mt19937_64 rng(0xD1FFu + static_cast<std::uint64_t>(round) * 7919);
    AlignConfig cfg;
    cfg.kind = AlignKind::Local;  // the inter engine is local-only
    const auto pens = test::test_penalties();
    cfg.pen = pens[static_cast<std::size_t>(round) % pens.size()];

    std::uniform_int_distribution<int> qlen_d(40, 260), slen_d(2, 300);
    const auto query =
        test::random_protein(rng, static_cast<std::size_t>(qlen_d(rng)));

    seq::Database db;
    int n = 0;
    auto add = [&](std::vector<std::uint8_t> s) {
      char id[32];
      std::snprintf(id, sizeof(id), "s%d", n++);
      db.add(seq::EncodedSequence{id, std::move(s)});
    };
    // Stride boundaries: one below, at, and above each power-of-two lane
    // granularity up to 128.
    for (std::size_t len : {15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129}) {
      add(test::random_protein(rng, len));
    }
    add({});                            // empty subject
    add(test::random_protein(rng, 1));  // single residue
    for (int i = 0; i < 4; ++i) {
      add(test::random_protein(rng, static_cast<std::size_t>(slen_d(rng))));
    }
    add(test::mutate(rng, query, 0.1, 0.02));  // saturates int8 lanes

    std::vector<long> oracle(db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
      oracle[i] = core::align_sequential(m, cfg, query, db[i].view());
    }

    // Intra-sequence engine: every ISA x adaptive start width (skipping
    // widths the backend does not implement).
    for (simd::IsaKind isa : isas) {
      for (ScoreWidth width :
           {ScoreWidth::Auto, ScoreWidth::W16, ScoreWidth::W32}) {
        if (width == ScoreWidth::W16 &&
            core::get_engine<std::int16_t>(isa) == nullptr) {
          continue;
        }
        if (width == ScoreWidth::W32 &&
            core::get_engine<std::int32_t>(isa) == nullptr) {
          continue;
        }
        search::SearchOptions opt;
        opt.threads = 1 + round % 3;
        opt.query.isa = isa;
        opt.query.width = width;
        opt.query.strategy =
            static_cast<Strategy>(1 + (round + static_cast<int>(width)) % 3);
        seq::Database dbc = db;
        const auto res = search::DatabaseSearch(m, cfg, opt).search(query, dbc);
        ASSERT_EQ(res.scores.size(), oracle.size());
        for (std::size_t i = 0; i < oracle.size(); ++i) {
          ASSERT_EQ(res.scores[i], oracle[i])
              << "round " << round << " intra isa=" << simd::isa_name(isa)
              << " width=" << static_cast<int>(width) << " subject " << i
              << " len " << db[i].size();
        }
      }
    }

    // Inter-sequence engine: every backend x precision-ladder start tier.
    for (simd::IsaKind isa : isas) {
      if (core::get_inter_engine(isa) == nullptr) continue;
      for (ScoreWidth start :
           {ScoreWidth::Auto, ScoreWidth::W16, ScoreWidth::W32}) {
        search::SearchOptions opt;
        opt.threads = 1 + round % 3;
        search::InterSequenceSearch inter(m, cfg.pen, opt, isa, start);
        seq::Database dbc = db;
        const auto res = inter.search(query, dbc);
        ASSERT_EQ(res.scores.size(), oracle.size());
        for (std::size_t i = 0; i < oracle.size(); ++i) {
          ASSERT_EQ(res.scores[i], oracle[i])
              << "round " << round << " inter isa=" << simd::isa_name(isa)
              << " start=" << static_cast<int>(start) << " subject " << i
              << " len " << db[i].size();
        }
      }
    }

    // Batched many-query scheduler vs the same oracle (two queries: the
    // round's query twice, exercising the profile-cache hit path).
    {
      search::SearchOptions opt;
      opt.threads = 2;
      seq::Database dbc = db;
      const auto many = search::DatabaseSearch(m, cfg, opt)
                            .search_many({query, query}, dbc);
      ASSERT_EQ(many.size(), 2u);
      for (const auto& r : many) {
        for (std::size_t i = 0; i < oracle.size(); ++i) {
          ASSERT_EQ(r.scores[i], oracle[i]) << "round " << round
                                            << " batched subject " << i;
        }
      }
    }
  }
}

// The oracle itself on degenerate shapes: the DP recurrence collapses to
// its boundary conditions when either input is empty.
TEST(Fuzz, EmptySequenceOracle) {
  const auto& m = score::ScoreMatrix::blosum62();
  std::mt19937_64 rng(99);
  const auto s = test::random_protein(rng, 25);

  for (AlignKind kind :
       {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
        AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
    AlignConfig cfg;
    cfg.kind = kind;
    cfg.pen = Penalties::symmetric(10, 2);
    // Two empties: nothing to align, score 0 under every mode.
    EXPECT_EQ(core::align_sequential(m, cfg, {}, {}), 0) << to_string(kind);
  }

  // Local: an empty side means the best local alignment is empty -> 0.
  AlignConfig local;
  local.kind = AlignKind::Local;
  local.pen = Penalties::symmetric(10, 2);
  EXPECT_EQ(core::align_sequential(m, local, {}, s), 0);
  EXPECT_EQ(core::align_sequential(m, local, s, {}), 0);

  // Global: an empty query leaves one all-gap run across the subject.
  AlignConfig global;
  global.kind = AlignKind::Global;
  global.pen = Penalties::symmetric(10, 2);
  const long all_gap = core::align_sequential(m, global, {}, s);
  EXPECT_EQ(all_gap, -(10 + 2 * static_cast<long>(s.size())));
}

// Adversarial lazy-F workload (high identity, long indels): the regime
// where the legacy convergence loop retries most and the scan fixup saves
// the most. Every backend runs both lazy-F paths against the sequential
// oracle AND against each other - the fixup must be score-identical to
// the loop it replaces, not merely oracle-correct, across affine and
// linear gap systems and across alignment kinds.
TEST(Fuzz, AdversarialLazyFDifferential) {
  const auto& m = score::ScoreMatrix::blosum62();
  const auto isas = test::available_isas();
  const int rounds = fuzz_rounds(3);

  for (int round = 0; round < rounds; ++round) {
    seq::SequenceGenerator gen(0xADF0u + static_cast<std::uint64_t>(round));
    std::uniform_int_distribution<int> len_d(120, 700);
    const auto query = gen.protein(
        static_cast<std::size_t>(len_d(gen.rng())), "q");
    seq::AdversarialSpec spec;
    spec.identity = 0.95 + 0.04 * (round % 2);
    spec.gap_rate = 0.005 + 0.01 * (round % 3);
    const auto subject = gen.adversarial_subject(query, spec);

    const auto& alpha = score::Alphabet::protein();
    const auto q = alpha.encode(query.residues);
    const auto s = alpha.encode(subject.residues);

    for (const bool linear : {false, true}) {
      for (AlignKind kind : {AlignKind::Local, AlignKind::Global,
                             AlignKind::SemiGlobal}) {
        AlignConfig cfg;
        cfg.kind = kind;
        cfg.pen = linear ? Penalties::symmetric(0, 4)
                         : Penalties::symmetric(10, 2);
        const long expect = core::align_sequential(m, cfg, q, s);

        for (simd::IsaKind isa : isas) {
          for (Strategy strat : {Strategy::StripedIterate, Strategy::Hybrid}) {
            long scores[2];
            for (LazyF lazyf : {LazyF::Fixup, LazyF::Legacy}) {
              cfg.lazyf = lazyf;
              AlignOptions opt;
              opt.isa = isa;
              opt.width = ScoreWidth::Auto;  // exercises 8/16-bit fixup too
              opt.strategy = strat;
              scores[lazyf == LazyF::Legacy] = align_pair(m, cfg, q, s, opt).score;
              ASSERT_EQ(scores[lazyf == LazyF::Legacy], expect)
                  << "round " << round << " " << to_string(kind) << " "
                  << to_string(strat) << " " << to_string(lazyf) << " "
                  << (linear ? "linear" : "affine") << " isa "
                  << simd::isa_name(isa);
            }
            ASSERT_EQ(scores[0], scores[1])
                << "fixup/legacy divergence round " << round;
          }
        }
      }
    }
  }
}

// Two-stage search differential (docs/search.md): each round builds a
// seeded database of planted homologs, stride-boundary lengths, and
// degenerate subjects, then checks - for every backend x precision tier x
// threshold - that the filtered search is a prefix-consistent subset of
// the exhaustive one: every survivor rescored bit-identically, dropped
// subjects only ever carrying the sentinel, the filtered top-k exactly
// the exhaustive ranking with dropped subjects removed. At the calibrated
// default threshold the planted homologs must all survive (recall).
TEST(Fuzz, FilterRecallDifferential) {
  const auto& m = score::ScoreMatrix::blosum62();
  const auto isas = test::available_isas();
  const int rounds = fuzz_rounds(3);
  const std::size_t kTopK = 6;

  for (int round = 0; round < rounds; ++round) {
    std::mt19937_64 rng(0xF117u + static_cast<std::uint64_t>(round) * 104729);
    AlignConfig cfg;
    cfg.kind = AlignKind::Local;  // the filter's calibrated regime
    const auto pens = test::test_penalties();
    cfg.pen = pens[static_cast<std::size_t>(round) % pens.size()];

    std::uniform_int_distribution<int> qlen_d(120, 280), slen_d(2, 320);
    const auto query =
        test::random_protein(rng, static_cast<std::size_t>(qlen_d(rng)));

    seq::Database db;
    int n = 0;
    auto add = [&](std::vector<std::uint8_t> s) {
      char id[32];
      std::snprintf(id, sizeof(id), "s%d", n++);
      db.add(seq::EncodedSequence{id, std::move(s)});
    };
    // Planted homologs first (original indices 0..kTopK-1): identity
    // bands from near-identical down to the calibration edge.
    const double subs[] = {0.05, 0.15, 0.25, 0.35, 0.40, 0.10};
    for (std::size_t h = 0; h < kTopK; ++h) {
      add(test::mutate(rng, query, subs[h], 0.01 * static_cast<double>(h % 4)));
    }
    add({});                            // empty subject: guard auto-pass
    add(test::random_protein(rng, 1));  // single residue: guard auto-pass
    for (std::size_t len : {16, 17, 63, 64, 65, 128}) {
      add(test::random_protein(rng, len));
    }
    for (int i = 0; i < 80; ++i) {
      add(test::random_protein(rng, static_cast<std::size_t>(slen_d(rng))));
    }

    for (simd::IsaKind isa : isas) {
      for (ScoreWidth width : {ScoreWidth::Auto, ScoreWidth::W32}) {
        if (width == ScoreWidth::W32 &&
            core::get_engine<std::int32_t>(isa) == nullptr) {
          continue;
        }
        search::SearchOptions opt;
        opt.threads = 1 + round % 3;
        opt.top_k = kTopK;
        opt.query.isa = isa;
        opt.query.width = width;

        seq::Database dbe = db;
        const auto exhaustive =
            search::DatabaseSearch(m, cfg, opt).search(query, dbe);

        // Default (calibrated) threshold plus one loose and one absurdly
        // tight cut: the subset invariant must hold at every threshold,
        // recall only at the default.
        for (const double thr : {-1.0, 0.01, 0.6}) {
          opt.filter.mode = filter::FilterMode::On;
          opt.filter.threshold = thr;
          seq::Database dbf = db;
          const auto filtered =
              search::DatabaseSearch(m, cfg, opt).search(query, dbf);
          ASSERT_TRUE(filtered.filtered);
          ASSERT_EQ(filtered.scores.size(), exhaustive.scores.size());

          std::vector<search::SearchHit> expected;
          for (std::size_t i = 0; i < filtered.scores.size(); ++i) {
            if (filtered.scores[i] == filter::kDroppedScore) continue;
            ASSERT_EQ(filtered.scores[i], exhaustive.scores[i])
                << "round " << round << " isa " << simd::isa_name(isa)
                << " thr " << thr << " subject " << i;
            expected.push_back(search::SearchHit{i, exhaustive.scores[i]});
          }
          std::sort(expected.begin(), expected.end(),
                    [](const search::SearchHit& a, const search::SearchHit& b) {
                      return a.score != b.score ? a.score > b.score
                                                : a.index < b.index;
                    });
          if (expected.size() > kTopK) expected.resize(kTopK);
          ASSERT_EQ(filtered.top.size(), expected.size())
              << "round " << round << " thr " << thr;
          for (std::size_t r = 0; r < expected.size(); ++r) {
            ASSERT_EQ(filtered.top[r].index, expected[r].index)
                << "round " << round << " thr " << thr << " rank " << r;
            ASSERT_EQ(filtered.top[r].score, expected[r].score);
          }

          if (thr < 0.0) {
            // Calibrated default: every planted homolog survives.
            for (std::size_t h = 0; h < kTopK; ++h) {
              ASSERT_NE(filtered.scores[h], filter::kDroppedScore)
                  << "round " << round << " isa " << simd::isa_name(isa)
                  << " dropped planted homolog " << h << " (sub rate "
                  << subs[h] << ")";
            }
          }
        }
      }
    }
  }
}

TEST(Fuzz, LongSimilarPairAllBackends) {
  // One big pair (8k x 8k, high identity) through every backend: catches
  // accumulation and range issues short tests miss.
  const auto& m = score::ScoreMatrix::blosum62();
  std::mt19937_64 rng(31337);
  const auto q = test::random_protein(rng, 8000);
  const auto s = test::mutate(rng, q, 0.15, 0.02);

  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);
  const long expect = core::align_sequential(m, cfg, q, s);

  for (simd::IsaKind isa : test::available_isas()) {
    AlignOptions opt;
    opt.isa = isa;
    opt.width = ScoreWidth::Auto;  // will promote to 32-bit
    opt.strategy = Strategy::Hybrid;
    const AlignResult r = align_pair(m, cfg, q, s, opt);
    EXPECT_EQ(r.score, expect) << simd::isa_name(isa);
    EXPECT_FALSE(r.saturated);
  }
}

}  // namespace
