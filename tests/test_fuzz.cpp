// Randomized cross-checks ("fuzz"): random Farrar-safe configurations,
// degenerate inputs (homopolymers, wildcards, stop codons), DNA alphabet,
// and shape extremes - every kernel answer is checked against the oracle.
#include <gtest/gtest.h>

#include <random>

#include "core/aligner.h"
#include "core/sequential.h"
#include "score/matrices.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

TEST(Fuzz, RandomConfigurationsMatchOracle) {
  std::mt19937_64 rng(0xF055);
  const auto& m = score::ScoreMatrix::blosum62();
  std::uniform_int_distribution<int> open_d(1, 20), ext_d(2, 8);
  std::uniform_int_distribution<int> kind_d(0, 4), len_d(1, 400);
  std::uniform_int_distribution<int> strat_d(0, 2);

  const auto isas = test::available_isas();
  for (int iter = 0; iter < 60; ++iter) {
    AlignConfig cfg;
    cfg.kind = static_cast<AlignKind>(kind_d(rng));
    // Linear systems need open == 0 on both axes.
    const bool linear = (iter % 3) == 0;
    cfg.pen.query = GapScheme{linear ? 0 : open_d(rng), ext_d(rng)};
    cfg.pen.subject = GapScheme{linear ? 0 : open_d(rng), ext_d(rng)};
    if (!farrar_safe(m, cfg.pen)) continue;

    const auto q = test::random_protein(rng, static_cast<std::size_t>(len_d(rng)));
    const auto s = test::random_protein(rng, static_cast<std::size_t>(len_d(rng)));
    const long expect = core::align_sequential(m, cfg, q, s);

    AlignOptions opt;
    opt.isa = isas[static_cast<std::size_t>(iter) % isas.size()];
    opt.width = ScoreWidth::W32;
    opt.strategy = static_cast<Strategy>(1 + strat_d(rng));
    const AlignResult r = align_pair(m, cfg, q, s, opt);
    ASSERT_EQ(r.score, expect)
        << "iter " << iter << " kind " << to_string(cfg.kind) << " strat "
        << to_string(r.strategy) << " isa " << simd::isa_name(r.isa)
        << " pen " << cfg.pen.query.open << "/" << cfg.pen.query.extend
        << " " << cfg.pen.subject.open << "/" << cfg.pen.subject.extend;
  }
}

TEST(Fuzz, DegenerateSequences) {
  const auto& alpha = score::Alphabet::protein();
  const auto& m = score::ScoreMatrix::blosum62();

  const std::vector<std::string> inputs = {
      "A",
      "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",  // homopolymer
      "XXXXXXXXXX",                                         // all wildcard
      "W*W*W*W*W*",                                         // stop codons
      "ARNDCQEGHILKMFPSTWYVBZX*",                           // full alphabet
  };

  for (AlignKind kind :
       {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
          AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
    AlignConfig cfg;
    cfg.kind = kind;
    cfg.pen = Penalties::symmetric(10, 2);
    for (const auto& qs : inputs) {
      for (const auto& ss : inputs) {
        const auto q = alpha.encode(qs);
        const auto s = alpha.encode(ss);
        const long expect = core::align_sequential(m, cfg, q, s);
        for (Strategy strat : {Strategy::StripedIterate,
                               Strategy::StripedScan, Strategy::Hybrid}) {
          AlignOptions opt;
          opt.strategy = strat;
          opt.width = ScoreWidth::W32;
          ASSERT_EQ(align_pair(m, cfg, q, s, opt).score, expect)
              << to_string(kind) << " " << to_string(strat) << " '" << qs
              << "' vs '" << ss << "'";
        }
      }
    }
  }
}

TEST(Fuzz, DnaAlignment) {
  const score::ScoreMatrix dna = score::ScoreMatrix::dna(5, 4);
  const auto& alpha = dna.alphabet();
  std::mt19937_64 rng(404);
  std::uniform_int_distribution<int> base(0, 3);

  for (AlignKind kind : {AlignKind::Local, AlignKind::Global}) {
    AlignConfig cfg;
    cfg.kind = kind;
    cfg.pen = Penalties::symmetric(10, 4);  // farrar-safe for min=-4
    ASSERT_TRUE(farrar_safe(dna, cfg.pen));
    for (int iter = 0; iter < 8; ++iter) {
      std::vector<std::uint8_t> q(50 + iter * 31), s(80 + iter * 17);
      for (auto& c : q) c = static_cast<std::uint8_t>(base(rng));
      for (auto& c : s) c = static_cast<std::uint8_t>(base(rng));
      // Sprinkle Ns.
      q[q.size() / 2] = static_cast<std::uint8_t>(alpha.wildcard());

      const long expect = core::align_sequential(dna, cfg, q, s);
      for (Strategy strat : {Strategy::StripedIterate, Strategy::StripedScan,
                             Strategy::Hybrid}) {
        AlignOptions opt;
        opt.strategy = strat;
        ASSERT_EQ(align_pair(dna, cfg, q, s, opt).score, expect)
            << to_string(kind) << " " << to_string(strat);
      }
    }
  }
}

TEST(Fuzz, ExtremeShapeRatios) {
  const auto& m = score::ScoreMatrix::blosum62();
  std::mt19937_64 rng(7777);
  AlignConfig cfg;
  cfg.pen = Penalties::symmetric(10, 2);

  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 2000}, {2000, 1}, {2, 1500}, {1500, 2}, {3000, 64}, {64, 3000}};
  for (AlignKind kind :
       {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
          AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
    cfg.kind = kind;
    for (const auto& [mm, nn] : shapes) {
      const auto q = test::random_protein(rng, mm);
      const auto s = test::random_protein(rng, nn);
      const long expect = core::align_sequential(m, cfg, q, s);
      AlignOptions opt;
      opt.width = ScoreWidth::W32;
      opt.strategy = Strategy::Hybrid;
      ASSERT_EQ(align_pair(m, cfg, q, s, opt).score, expect)
          << to_string(kind) << " " << mm << "x" << nn;
    }
  }
}

TEST(Fuzz, LongSimilarPairAllBackends) {
  // One big pair (8k x 8k, high identity) through every backend: catches
  // accumulation and range issues short tests miss.
  const auto& m = score::ScoreMatrix::blosum62();
  std::mt19937_64 rng(31337);
  const auto q = test::random_protein(rng, 8000);
  const auto s = test::mutate(rng, q, 0.15, 0.02);

  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);
  const long expect = core::align_sequential(m, cfg, q, s);

  for (simd::IsaKind isa : test::available_isas()) {
    AlignOptions opt;
    opt.isa = isa;
    opt.width = ScoreWidth::Auto;  // will promote to 32-bit
    opt.strategy = Strategy::Hybrid;
    const AlignResult r = align_pair(m, cfg, q, s, opt);
    EXPECT_EQ(r.score, expect) << simd::isa_name(isa);
    EXPECT_FALSE(r.saturated);
  }
}

}  // namespace
