// Sanity tests for the sequential reference oracle: hand-computed scores,
// structural properties (symmetry, monotonicity), and agreement between
// the plain and optimized sequential implementations.
#include <gtest/gtest.h>

#include <random>

#include "baselines/sequential_opt.h"
#include "core/sequential.h"
#include "score/matrices.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

std::vector<std::uint8_t> enc(const char* s) {
  return score::Alphabet::protein().encode(s);
}

AlignConfig cfg_of(AlignKind k, int open, int ext) {
  AlignConfig c;
  c.kind = k;
  c.pen = Penalties::symmetric(open, ext);
  return c;
}

TEST(Sequential, IdenticalSequencesLocal) {
  const auto q = enc("HEAGAWGHEE");
  const auto& m = score::ScoreMatrix::blosum62();
  long self = 0;
  for (auto c : q) self += m.at(c, c);
  EXPECT_EQ(core::align_sequential(m, cfg_of(AlignKind::Local, 10, 2), q, q),
            self);
}

TEST(Sequential, KnownLocalAlignment) {
  // Classic BioPython/EMBOSS example pair: HEAGAWGHEE vs PAWHEAE with
  // BLOSUM62. Local score with gap open 10 / extend 2 (first char costs
  // 12): best local alignment is AW-GHE / AW-HEA region -> check against a
  // value computed by an independent hand DP.
  const auto q = enc("HEAGAWGHEE");
  const auto s = enc("PAWHEAE");
  const auto& m = score::ScoreMatrix::blosum62();
  const long sc =
      core::align_sequential(m, cfg_of(AlignKind::Local, 10, 2), q, s);
  // AW vs AW = 4+11 = 15; extending to AWGHE vs AW-HE... verify >= 15 and
  // exact value stability.
  EXPECT_GE(sc, 15);
  EXPECT_EQ(sc, core::align_sequential(m, cfg_of(AlignKind::Local, 10, 2), q,
                                       s));  // deterministic
}

TEST(Sequential, GlobalGapOnly) {
  // Aligning A against AAA globally: one match + gap of length 2.
  const auto q = enc("A");
  const auto s = enc("AAA");
  const auto& m = score::ScoreMatrix::blosum62();
  const long sc =
      core::align_sequential(m, cfg_of(AlignKind::Global, 10, 2), q, s);
  // match(A,A)=4, gap of 2 subject chars = -(10 + 2*2) = -14 -> -10.
  EXPECT_EQ(sc, 4 - 14);
}

TEST(Sequential, GlobalLinearGapOnly) {
  const auto q = enc("A");
  const auto s = enc("AAAA");
  const auto& m = score::ScoreMatrix::blosum62();
  const long sc =
      core::align_sequential(m, cfg_of(AlignKind::Global, 0, 4), q, s);
  EXPECT_EQ(sc, 4 - 3 * 4);
}

TEST(Sequential, SemiGlobalFreeSubjectOverhangs) {
  // Query embedded exactly inside a longer subject: semiglobal score must
  // equal the self-score (overhangs free), global must be lower.
  const auto q = enc("GAWGHE");
  const auto s = enc("PPPPGAWGHEPPPP");
  const auto& m = score::ScoreMatrix::blosum62();
  long self = 0;
  for (auto c : q) self += m.at(c, c);
  EXPECT_EQ(
      core::align_sequential(m, cfg_of(AlignKind::SemiGlobal, 10, 2), q, s),
      self);
  EXPECT_LT(core::align_sequential(m, cfg_of(AlignKind::Global, 10, 2), q, s),
            self);
}

TEST(Sequential, SemiGlobalQueryFreeQueryOverhangs) {
  // Subject embedded inside a longer query: subject must be fully aligned,
  // the query overhangs are free.
  const auto q = enc("PPPPGAWGHEPPPP");
  const auto s = enc("GAWGHE");
  const auto& m = score::ScoreMatrix::blosum62();
  long self = 0;
  for (auto c : s) self += m.at(c, c);
  EXPECT_EQ(core::align_sequential(
                m, cfg_of(AlignKind::SemiGlobalQuery, 10, 2), q, s),
            self);
  EXPECT_LT(core::align_sequential(m, cfg_of(AlignKind::Global, 10, 2), q, s),
            self);
}

TEST(Sequential, OverlapDovetail) {
  // Suffix of the query overlaps the prefix of the subject (the assembly
  // dovetail case): the overlap score is the shared region's self-score.
  const auto shared = enc("HEAGAWGHEE");
  const auto q = enc("KKKKKKHEAGAWGHEE");  // shared region is a suffix
  const auto s = enc("HEAGAWGHEEDDDDDD");  // ... and a prefix
  const auto& m = score::ScoreMatrix::blosum62();
  long self = 0;
  for (auto c : shared) self += m.at(c, c);
  EXPECT_EQ(
      core::align_sequential(m, cfg_of(AlignKind::Overlap, 10, 2), q, s),
      self);
  // Both semi-global kinds must pay for one of the overhangs here.
  EXPECT_LT(
      core::align_sequential(m, cfg_of(AlignKind::SemiGlobal, 10, 2), q, s),
      self);
  EXPECT_LT(core::align_sequential(
                m, cfg_of(AlignKind::SemiGlobalQuery, 10, 2), q, s),
            self);
}

TEST(Sequential, KindDominanceOrdering) {
  // Relaxing boundary constraints can only raise the score:
  // local >= overlap >= {semiglobal, semiglobal-query} >= global.
  std::mt19937_64 rng(61);
  const auto& m = score::ScoreMatrix::blosum62();
  for (int iter = 0; iter < 10; ++iter) {
    const auto a = test::random_protein(rng, 40 + iter * 13);
    const auto b = test::mutate(rng, a, 0.4, 0.1);
    auto sc = [&](AlignKind k) {
      return core::align_sequential(m, cfg_of(k, 10, 2), a, b);
    };
    const long local = sc(AlignKind::Local);
    const long overlap = sc(AlignKind::Overlap);
    const long semi = sc(AlignKind::SemiGlobal);
    const long semi_q = sc(AlignKind::SemiGlobalQuery);
    const long global = sc(AlignKind::Global);
    EXPECT_GE(local, overlap);
    EXPECT_GE(overlap, semi);
    EXPECT_GE(overlap, semi_q);
    EXPECT_GE(semi, global);
    EXPECT_GE(semi_q, global);
  }
}

TEST(Sequential, LocalScoreIsSymmetricUnderSwap) {
  // With symmetric penalties and a symmetric matrix, swapping the inputs
  // must not change the local score.
  std::mt19937_64 rng(5);
  const auto& m = score::ScoreMatrix::blosum62();
  for (int iter = 0; iter < 10; ++iter) {
    const auto a = test::random_protein(rng, 40 + iter * 7);
    const auto b = test::random_protein(rng, 60);
    const auto cfg = cfg_of(AlignKind::Local, 10, 2);
    EXPECT_EQ(core::align_sequential(m, cfg, a, b),
              core::align_sequential(m, cfg, b, a));
  }
}

TEST(Sequential, LocalDominatesGlobal) {
  std::mt19937_64 rng(6);
  const auto& m = score::ScoreMatrix::blosum62();
  for (int iter = 0; iter < 10; ++iter) {
    const auto a = test::random_protein(rng, 50);
    const auto b = test::random_protein(rng, 50);
    const long local =
        core::align_sequential(m, cfg_of(AlignKind::Local, 10, 2), a, b);
    const long semi =
        core::align_sequential(m, cfg_of(AlignKind::SemiGlobal, 10, 2), a, b);
    const long global =
        core::align_sequential(m, cfg_of(AlignKind::Global, 10, 2), a, b);
    EXPECT_GE(local, semi);
    EXPECT_GE(semi, global);
    EXPECT_GE(local, 0);
  }
}

TEST(Sequential, OptimizedBaselineAgrees) {
  std::mt19937_64 rng(7);
  const auto& m = score::ScoreMatrix::blosum62();
  for (const Penalties& pen : test::test_penalties()) {
    for (AlignKind kind :
         {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
          AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
      AlignConfig cfg;
      cfg.kind = kind;
      cfg.pen = pen;
      for (int iter = 0; iter < 5; ++iter) {
        const auto a = test::random_protein(rng, 33 + 11 * iter);
        const auto b = test::mutate(rng, a, 0.3, 0.05);
        EXPECT_EQ(core::align_sequential(m, cfg, a, b),
                  baselines::align_sequential_opt(m, cfg, a, b))
            << to_string(kind) << " iter " << iter;
      }
    }
  }
}

TEST(Sequential, EmptyInputDegenerates) {
  // Empty sequences are valid: the DP collapses to its boundary
  // conditions (needed so the search layer can score zero-length
  // database records instead of crashing).
  const auto q = enc("A");
  const std::vector<std::uint8_t> empty;
  const auto& m = score::ScoreMatrix::blosum62();
  EXPECT_EQ(core::align_sequential(m, cfg_of(AlignKind::Local, 10, 2), empty, q),
            0);
  EXPECT_EQ(core::align_sequential(m, cfg_of(AlignKind::Local, 10, 2), q, empty),
            0);
  // Global: the lone residue is aligned against a single opened gap.
  EXPECT_EQ(core::align_sequential(m, cfg_of(AlignKind::Global, 10, 2), q, empty),
            -12);
  EXPECT_EQ(
      core::align_sequential(m, cfg_of(AlignKind::Global, 10, 2), empty, empty),
      0);
}

TEST(Sequential, InvalidConfigThrows) {
  const auto q = enc("AAA");
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.pen.query.extend = 0;  // extend must be positive
  EXPECT_THROW(core::align_sequential(m, cfg, q, q), std::invalid_argument);
}

}  // namespace
