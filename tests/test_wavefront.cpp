// Anti-diagonal (wavefront) baseline: exact agreement with the sequential
// oracle across kinds, gap systems, and awkward shapes (the diagonal
// boundary bookkeeping is where wavefront implementations usually break).
#include <gtest/gtest.h>

#include <random>

#include "baselines/wavefront.h"
#include "core/sequential.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

class WavefrontProperty
    : public testing::TestWithParam<std::tuple<AlignKind, int>> {};

TEST_P(WavefrontProperty, MatchesOracle) {
  const AlignKind kind = std::get<0>(GetParam());
  const Penalties pen =
      test::test_penalties()[static_cast<std::size_t>(std::get<1>(GetParam()))];
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = kind;
  cfg.pen = pen;

  std::mt19937_64 rng(400 + std::get<1>(GetParam()));
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {1, 40}, {40, 1}, {2, 3},     {17, 64},
      {64, 17}, {100, 100}, {33, 200}, {200, 33}, {128, 128},
  };
  for (const auto& [mm, nn] : shapes) {
    const auto q = test::random_protein(rng, mm);
    const auto s = test::random_protein(rng, nn);
    EXPECT_EQ(baselines::align_wavefront(m, cfg, q, s).score,
              core::align_sequential(m, cfg, q, s))
        << "m=" << mm << " n=" << nn;
  }
  // Similar pairs too (different numerical paths dominate).
  for (int iter = 0; iter < 5; ++iter) {
    const auto q = test::random_protein(rng, 150);
    const auto s = test::mutate(rng, q, 0.1, 0.05);
    EXPECT_EQ(baselines::align_wavefront(m, cfg, q, s).score,
              core::align_sequential(m, cfg, q, s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, WavefrontProperty,
    testing::Combine(testing::Values(AlignKind::Local, AlignKind::Global,
                                     AlignKind::SemiGlobal,
                                     AlignKind::SemiGlobalQuery,
                                     AlignKind::Overlap),
                     testing::Values(0, 1, 2, 3, 4)),
    [](const testing::TestParamInfo<std::tuple<AlignKind, int>>& pinfo) {
      std::string name = std::string(to_string(std::get<0>(pinfo.param))) +
                         "_pen" + std::to_string(std::get<1>(pinfo.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
