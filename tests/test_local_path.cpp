// SSW-style vector traceback pipeline: end/begin location from the
// tracked kernels plus slab traceback must yield an optimal local
// alignment with globally valid coordinates.
#include <gtest/gtest.h>

#include <random>

#include "core/local_path.h"
#include "core/sequential.h"
#include "seq/generator.h"
#include "seq/pairgen.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

long rescore_local(const score::ScoreMatrix& m, const Penalties& pen,
                   std::span<const std::uint8_t> q,
                   std::span<const std::uint8_t> s,
                   const core::Alignment& aln) {
  long score = 0;
  std::size_t qi = aln.query_begin, si = aln.subject_begin, p = 0;
  while (p < aln.cigar.size()) {
    std::size_t cnt = 0;
    while (p < aln.cigar.size() && isdigit(aln.cigar[p])) {
      cnt = cnt * 10 + static_cast<std::size_t>(aln.cigar[p++] - '0');
    }
    const char op = aln.cigar[p++];
    if (op == 'M') {
      for (std::size_t t = 0; t < cnt; ++t) score += m.at(s[si++], q[qi++]);
    } else if (op == 'I') {
      score -= pen.query.open + static_cast<long>(cnt) * pen.query.extend;
      qi += cnt;
    } else {
      score -= pen.subject.open + static_cast<long>(cnt) * pen.subject.extend;
      si += cnt;
    }
  }
  EXPECT_EQ(qi, aln.query_end);
  EXPECT_EQ(si, aln.subject_end);
  return score;
}

class LocalPath : public testing::TestWithParam<simd::IsaKind> {};

TEST_P(LocalPath, OptimalPathWithGlobalCoordinates) {
  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen = Penalties::symmetric(10, 2);
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = pen;

  seq::SequenceGenerator gen(90);
  std::mt19937_64 rng(91);
  for (int iter = 0; iter < 10; ++iter) {
    // Query with a homologous island buried deep in a long subject: the
    // slab should be far smaller than the whole matrix.
    const seq::Sequence qs = gen.protein(150);
    const auto query = score::Alphabet::protein().encode(qs.residues);
    const auto island = seq::make_similar_subject(
        gen, qs, {seq::Level::Hi, seq::Level::Hi});
    std::vector<std::uint8_t> subject = test::random_protein(rng, 1200);
    const auto island_enc =
        score::Alphabet::protein().encode(island.residues);
    const std::size_t insert_at = 400 + static_cast<std::size_t>(iter) * 40;
    subject.insert(subject.begin() + static_cast<long>(insert_at),
                   island_enc.begin(), island_enc.end());

    core::LocalPathOptions opt;
    opt.align.isa = GetParam();
    const core::Alignment aln =
        core::align_local_path(m, pen, query, subject, opt);

    const long oracle = core::align_sequential(m, cfg, query, subject);
    ASSERT_EQ(aln.score, oracle) << "iter " << iter;
    ASSERT_EQ(rescore_local(m, pen, query, subject, aln), oracle);
    // The alignment should sit on the planted island.
    EXPECT_GE(aln.subject_begin, insert_at > 50 ? insert_at - 50 : 0u);
    EXPECT_LE(aln.subject_end, insert_at + island_enc.size() + 50);
  }
}

TEST_P(LocalPath, EmptyWhenNoPositiveScore) {
  const auto& alpha = score::Alphabet::protein();
  const auto& m = score::ScoreMatrix::blosum62();
  core::LocalPathOptions opt;
  opt.align.isa = GetParam();
  const core::Alignment aln = core::align_local_path(
      m, Penalties::symmetric(10, 2), alpha.encode("WWWW"),
      alpha.encode("GGGG"), opt);
  EXPECT_EQ(aln.score, 0);
  EXPECT_TRUE(aln.cigar.empty());
}

TEST_P(LocalPath, AgreesWithFullTraceback) {
  const auto& m = score::ScoreMatrix::blosum62();
  const Penalties pen{{12, 2}, {8, 3}};
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = pen;

  std::mt19937_64 rng(92);
  core::LocalPathOptions opt;
  opt.align.isa = GetParam();
  for (int iter = 0; iter < 8; ++iter) {
    const auto q = test::random_protein(rng, 60 + iter * 21);
    const auto s = test::mutate(rng, q, 0.3, 0.08);
    const core::Alignment fast = core::align_local_path(m, pen, q, s, opt);
    const core::Alignment full = core::align_traceback(m, cfg, q, s);
    EXPECT_EQ(fast.score, full.score) << "iter " << iter;
    EXPECT_EQ(rescore_local(m, pen, q, s, fast), fast.score);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LocalPath,
                         testing::ValuesIn(test::available_isas()),
                         [](const testing::TestParamInfo<simd::IsaKind>& i) {
                           return std::string(simd::isa_name(i.param));
                         });

TEST(LocalPath, RejectsUnsafePenalties) {
  const auto& alpha = score::Alphabet::protein();
  EXPECT_THROW(core::align_local_path(score::ScoreMatrix::blosum62(),
                                      Penalties::symmetric(10, 1),
                                      alpha.encode("AW"), alpha.encode("AW")),
               std::invalid_argument);
}

}  // namespace
