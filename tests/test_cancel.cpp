// Cooperative cancellation (core/cancel.h) through the whole search
// stack: fired tokens and expired deadlines must stop kernels, pool
// workers, and schedulers within a bounded amount of work, must NEVER
// leak partial scores (the front-ends throw instead of returning), and
// must leave every component reusable for the next run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/query_context.h"
#include "search/batch_scheduler.h"
#include "search/database_search.h"
#include "search/inter_search.h"
#include "search/thread_pool.h"
#include "seq/generator.h"
#include "simd/isa.h"
#include "test_helpers.h"

using namespace aalign;
using namespace std::chrono_literals;

namespace {

seq::Database make_db(std::uint64_t seed, std::size_t count,
                      double median_len = 150.0) {
  seq::SequenceGenerator gen(seed);
  return seq::Database(score::Alphabet::protein(),
                       gen.protein_database(count, median_len, 0.5, 40, 500));
}

search::SearchOptions default_opt(int threads = 2) {
  search::SearchOptions opt;
  opt.threads = threads;
  opt.query.isa = simd::best_available_isa();
  return opt;
}

AlignConfig local_cfg() {
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);
  return cfg;
}

}  // namespace

TEST(CancelToken, FlagAndDeadlineSemantics) {
  core::CancelToken t;
  EXPECT_FALSE(t.stop_requested());
  EXPECT_EQ(t.stop_reason(), core::StopReason::None);
  EXPECT_FALSE(t.has_deadline());

  t.set_deadline_after(1h);
  EXPECT_TRUE(t.has_deadline());
  EXPECT_FALSE(t.stop_requested());

  t.set_deadline_after(-1ns);  // already past
  EXPECT_TRUE(t.stop_requested());
  EXPECT_EQ(t.stop_reason(), core::StopReason::DeadlineExceeded);

  t.cancel();  // explicit cancel wins over the deadline in the reason
  EXPECT_EQ(t.stop_reason(), core::StopReason::Cancelled);

  core::CancelToken u;
  u.cancel();
  EXPECT_TRUE(u.stop_requested());
  EXPECT_EQ(u.stop_reason(), core::StopReason::Cancelled);

  EXPECT_FALSE(core::stop_requested(nullptr));
  EXPECT_TRUE(core::stop_requested(&u));
}

// A pre-fired token stops QueryContext::align before any DP work: the
// result says cancelled and carries no score.
TEST(Cancel, QueryContextReturnsCancelledResult) {
  seq::SequenceGenerator gen(11);
  const auto query =
      score::Alphabet::protein().encode(gen.protein(400).residues);
  const auto subject =
      score::Alphabet::protein().encode(gen.protein(5000).residues);

  core::QueryOptions qopt;
  qopt.isa = simd::best_available_isa();
  const core::QueryContext ctx(score::ScoreMatrix::blosum62(), local_cfg(),
                               qopt, query);
  core::WorkspaceSet ws;

  core::CancelToken t;
  t.cancel();
  const core::AdaptiveResult ar =
      ctx.align(subject, ws, /*track_end=*/false, &t);
  EXPECT_TRUE(ar.cancelled);

  // Without a token the same context still produces the normal result.
  const core::AdaptiveResult ok = ctx.align(subject, ws);
  EXPECT_FALSE(ok.cancelled);
  EXPECT_GT(ok.kernel.score, 0);
}

// The pool contract: a fired token stops workers from picking up new
// items, the pool joins fully, and CancelledError surfaces iff items were
// left unexecuted.
TEST(Cancel, ThreadPoolStopsAndThrows) {
  core::CancelToken t;
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> fired{false};
  EXPECT_THROW(
      search::parallel_for_work_stealing(
          1000, 4,
          [&](int, std::size_t) {
            executed.fetch_add(1);
            if (executed.load() > 16 && !fired.exchange(true)) t.cancel();
            std::this_thread::sleep_for(100us);
          },
          nullptr, &t),
      core::CancelledError);
  // Bounded overrun: each of the 4 workers finishes at most the item it
  // was inside when the token fired.
  EXPECT_LT(executed.load(), std::size_t{1000});

  // A completed run with a late-fired token is NOT an error.
  core::CancelToken late;
  std::atomic<std::size_t> done{0};
  search::parallel_for_work_stealing(
      8, 2, [&](int, std::size_t) { done.fetch_add(1); }, nullptr, &late);
  EXPECT_EQ(done.load(), 8u);
}

// Pre-fired tokens and pre-expired deadlines abort DatabaseSearch before
// any subject is scored, with the matching StopReason.
TEST(Cancel, SearchThrowsWithReason) {
  seq::SequenceGenerator gen(21);
  const auto query =
      score::Alphabet::protein().encode(gen.protein(120).residues);
  seq::Database db = make_db(22, 60);
  const search::DatabaseSearch searcher(score::ScoreMatrix::blosum62(),
                                        local_cfg(), default_opt());

  core::CancelToken cancelled;
  cancelled.cancel();
  try {
    searcher.search(query, db, &cancelled);
    FAIL() << "expected CancelledError";
  } catch (const core::CancelledError& e) {
    EXPECT_EQ(e.reason(), core::StopReason::Cancelled);
  }

  core::CancelToken expired;
  expired.set_deadline_after(0ns);
  try {
    searcher.search(query, db, &expired);
    FAIL() << "expected CancelledError";
  } catch (const core::CancelledError& e) {
    EXPECT_EQ(e.reason(), core::StopReason::DeadlineExceeded);
  }

  // The same database and searcher still complete an uncancelled run.
  const search::SearchResult res = searcher.search(query, db);
  EXPECT_EQ(res.scores.size(), db.size());
}

// Mid-batch cancellation: the scheduler throws, the pool joins, and the
// SAME scheduler instance then produces bit-identical results to an
// untouched one - completed tiles leak nothing into the next run.
TEST(Cancel, BatchSchedulerReusableAfterCancel) {
  const auto& m = score::ScoreMatrix::blosum62();
  const AlignConfig cfg = local_cfg();
  seq::SequenceGenerator gen(31);
  std::vector<std::vector<std::uint8_t>> queries;
  for (std::size_t len : {200, 350, 280}) {
    queries.push_back(
        score::Alphabet::protein().encode(gen.protein(len).residues));
  }
  seq::Database db = make_db(32, 300);
  const search::SearchOptions opt = default_opt(4);

  search::BatchScheduler reference(m, cfg, opt);
  const std::vector<search::SearchResult> want = reference.run(queries, db);

  search::BatchScheduler sched(m, cfg, opt);
  core::CancelToken t;
  std::thread firer([&] {
    std::this_thread::sleep_for(2ms);
    t.cancel();
  });
  try {
    sched.run(queries, db, &t);
    // Tiny workloads can legitimately finish before the token fires.
  } catch (const core::CancelledError&) {
  }
  firer.join();

  // Reuse after cancellation: identical scores, bit for bit.
  const std::vector<search::SearchResult> got = sched.run(queries, db);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t q = 0; q < got.size(); ++q) {
    EXPECT_EQ(got[q].scores, want[q].scores) << "query " << q;
  }
}

// A cancelled run must stop in a small fraction of the full runtime: the
// poll points (per stride-chunk in kernels, per item in the pool) bound
// post-cancellation work to microseconds per worker.
TEST(Cancel, StopsWellBeforeFullRuntime) {
  const auto& m = score::ScoreMatrix::blosum62();
  const AlignConfig cfg = local_cfg();
  seq::SequenceGenerator gen(41);
  const std::vector<std::vector<std::uint8_t>> queries{
      score::Alphabet::protein().encode(gen.protein(800).residues),
      score::Alphabet::protein().encode(gen.protein(600).residues)};
  seq::Database db = make_db(42, 600, 250.0);
  const search::SearchOptions opt = default_opt(2);
  const search::DatabaseSearch searcher(m, cfg, opt);

  // Reference wall time of the full (uncancelled) workload.
  const auto t0 = std::chrono::steady_clock::now();
  (void)searcher.search_many(queries, db);
  const auto full = std::chrono::steady_clock::now() - t0;

  // Cancel almost immediately; the abort must land long before a full
  // run's worth of work, whatever this machine's speed.
  core::CancelToken t;
  std::thread firer([&] {
    std::this_thread::sleep_for(1ms);
    t.cancel();
  });
  const auto c0 = std::chrono::steady_clock::now();
  bool threw = false;
  try {
    searcher.search_many(queries, db, &t);
  } catch (const core::CancelledError&) {
    threw = true;
  }
  const auto cancelled = std::chrono::steady_clock::now() - c0;
  firer.join();

  EXPECT_TRUE(threw);
  EXPECT_LT(cancelled, full / 2 + 20ms)
      << "cancelled run took " << cancelled.count() << "ns vs full "
      << full.count() << "ns";
}

// Inter-sequence engine: same contract (throw, no partial scores, search
// object reusable).
TEST(Cancel, InterSearchThrowsAndRecovers) {
  seq::SequenceGenerator gen(51);
  const auto query =
      score::Alphabet::protein().encode(gen.protein(150).residues);
  seq::Database db = make_db(52, 80);
  const search::InterSequenceSearch inter(score::ScoreMatrix::blosum62(),
                                          Penalties::symmetric(10, 2),
                                          default_opt());

  core::CancelToken t;
  t.cancel();
  EXPECT_THROW(inter.search(query, db, &t), core::CancelledError);

  const search::InterSearchResult res = inter.search(query, db);
  EXPECT_EQ(res.scores.size(), db.size());

  core::CancelToken t2;
  t2.cancel();
  EXPECT_THROW(inter.search_many({query}, db, &t2), core::CancelledError);
  const auto many = inter.search_many({query}, db);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_EQ(many[0].scores, res.scores);
}

// Kernel drivers under a token behave identically to the token-free path
// when the token never fires: chunked column processing is exact.
TEST(Cancel, UnfiredTokenPreservesScores) {
  seq::SequenceGenerator gen(61);
  const auto query =
      score::Alphabet::protein().encode(gen.protein(300).residues);
  seq::Database db = make_db(62, 50);
  const search::DatabaseSearch searcher(score::ScoreMatrix::blosum62(),
                                        local_cfg(), default_opt());

  const search::SearchResult plain = searcher.search(query, db);
  core::CancelToken idle;  // never fired, no deadline
  const search::SearchResult tokened = searcher.search(query, db, &idle);
  EXPECT_EQ(plain.scores, tokened.scores);

  core::CancelToken far;  // armed but distant deadline
  far.set_deadline_after(1h);
  const search::SearchResult deadlined = searcher.search(query, db, &far);
  EXPECT_EQ(plain.scores, deadlined.scores);
}
