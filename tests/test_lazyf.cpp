// The deconstructed lazy-F fixup against its legacy oracle, on a
// constructed worst case: one enormous match at the top of the query and
// mismatches below it, so the up-gap (F) chain from the top cell floods
// the entire column. The legacy loop must cross every lane boundary - one
// full column pass per lane of carry - while the fixup resolves the same
// carry with one shifted max-scan plus a single bounded sweep.
//
// Assertions per backend (runtime cpuid-gated like test_simd_modules):
//   - the legacy loop really retries: >= 2 * segs corrective steps/column
//   - the fixup stays within one pass: <= segs steps/column
//   - H, E, and the workspace buffers end BIT-IDENTICAL between the paths
//   - kernel.lazyf.* accounting: fixup_cols == columns, saved_iters > 0
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/aligner.h"
#include "core/kernels.h"
#include "core/sequential.h"
#include "core/workspace.h"
#include "score/profile.h"
#include "simd/vec_avx2.h"
#include "simd/vec_avx512.h"
#include "simd/vec_avx512bw.h"
#include "simd/vec_scalar.h"
#include "simd/vec_sse41.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

// Query: one 'A' then mismatching 'C's; subject: all 'A'. With a match
// score far above the query length, every column's F chain from H(i,1)
// dominates the rest of the column.
struct WorstCase {
  score::ScoreMatrix m = score::ScoreMatrix::dna(200, 4);
  std::vector<std::uint8_t> q;
  std::vector<std::uint8_t> s;
  AlignConfig cfg;

  explicit WorstCase(std::size_t qlen = 64, std::size_t cols = 4) {
    const auto& alpha = m.alphabet();
    q.assign(qlen, static_cast<std::uint8_t>(alpha.ctoi('C')));
    q[0] = static_cast<std::uint8_t>(alpha.ctoi('A'));
    s.assign(cols, static_cast<std::uint8_t>(alpha.ctoi('A')));
    cfg.kind = AlignKind::Global;
    cfg.pen = Penalties::symmetric(2, 1);  // slow F decay -> deep carries
  }
};

template <class Ops>
struct EngineRun {
  core::Workspace<typename Ops::value_type> ws;
  std::uint64_t lazy_steps = 0;
  std::uint64_t fixup_cols = 0;
  std::uint64_t saved_iters = 0;
  long score = 0;
  int segs = 0;
};

template <class Ops>
EngineRun<Ops> run_engine(const WorstCase& wc, LazyF lazyf) {
  using T = typename Ops::value_type;
  score::StripedProfile<T> prof;
  score::build_striped_profile<T>(prof, wc.q, wc.m, Ops::kWidth, T{0});
  EngineRun<Ops> out;
  core::ColumnEngine<Ops, AlignKind::Global, true> eng(
      prof, core::make_steps<T>(wc.cfg), out.ws, lazyf);
  for (long i = 1; i <= static_cast<long>(wc.s.size()); ++i) {
    out.lazy_steps += eng.run_iterate_block(i, wc.s.data(), 1);
  }
  out.fixup_cols = eng.fixup_cols();
  out.saved_iters = eng.saved_iters();
  out.score = eng.finalize();
  out.segs = eng.segs();
  return out;
}

template <class Ops>
void check_worst_case() {
  const WorstCase wc;
  const auto legacy = run_engine<Ops>(wc, LazyF::Legacy);
  const auto fixup = run_engine<Ops>(wc, LazyF::Fixup);
  const auto cols = static_cast<std::uint64_t>(wc.s.size());
  const auto segs = static_cast<std::uint64_t>(legacy.segs);

  // The constructed column floods F across lanes: the legacy loop needs at
  // least one extra full pass per crossed lane boundary, the fixup at most
  // one pass total.
  EXPECT_GE(legacy.lazy_steps, cols * 2 * segs) << "legacy did not retry";
  EXPECT_LE(fixup.lazy_steps, cols * segs) << "fixup exceeded one pass";

  // Accounting: every column went through the fixup, and the saved-iters
  // estimate reflects the retries the legacy loop actually spent.
  EXPECT_EQ(legacy.fixup_cols, 0u);
  EXPECT_EQ(legacy.saved_iters, 0u);
  EXPECT_EQ(fixup.fixup_cols, cols);
  EXPECT_GT(fixup.saved_iters, 0u);

  EXPECT_EQ(fixup.score, legacy.score);

  // Bit-identical DP state: both H generations and the E carry. Both runs
  // processed the same column count, so buffer parity matches.
  const int padded = legacy.segs * Ops::kWidth;
  for (int off = 0; off < padded; ++off) {
    ASSERT_EQ(fixup.ws.h_prev[off], legacy.ws.h_prev[off]) << "H off " << off;
    ASSERT_EQ(fixup.ws.h_cur[off], legacy.ws.h_cur[off]) << "H' off " << off;
    ASSERT_EQ(fixup.ws.e[off], legacy.ws.e[off]) << "E off " << off;
  }
}

// Driver-level counters on the same worst case: the stats a search run
// would publish as kernel.lazyf.* must reflect the engine totals.
template <class Ops>
void check_driver_stats() {
  using T = typename Ops::value_type;
  const WorstCase wc;
  score::StripedProfile<T> prof;
  score::build_striped_profile<T>(prof, wc.q, wc.m, Ops::kWidth, T{0});
  const auto st = core::make_steps<T>(wc.cfg);

  core::Workspace<T> ws_f, ws_l;
  const auto rf = core::run_striped_iterate<Ops, AlignKind::Global, true>(
      prof, wc.s, st, ws_f, LazyF::Fixup);
  const auto rl = core::run_striped_iterate<Ops, AlignKind::Global, true>(
      prof, wc.s, st, ws_l, LazyF::Legacy);

  EXPECT_EQ(rf.score, rl.score);
  EXPECT_EQ(rf.stats.lazyf_fixup_cols, wc.s.size());
  EXPECT_GT(rf.stats.lazyf_saved_iters, 0u);
  EXPECT_EQ(rl.stats.lazyf_fixup_cols, 0u);
  EXPECT_EQ(rl.stats.lazyf_saved_iters, 0u);
  EXPECT_GT(rl.stats.lazy_steps, rf.stats.lazy_steps);
}

#define AALIGN_LAZYF_TEST(TAG)                                        \
  TEST(LazyFWorstCase, TAG) {                                         \
    if (!simd::isa_available(simd::isa_kind<simd::TAG##Tag>()))       \
      GTEST_SKIP() << #TAG " not available on this machine";          \
    check_worst_case<simd::VecOps<std::int32_t, simd::TAG##Tag>>();   \
    check_driver_stats<simd::VecOps<std::int32_t, simd::TAG##Tag>>(); \
  }

AALIGN_LAZYF_TEST(Scalar)
#if defined(AALIGN_HAVE_SSE41)
AALIGN_LAZYF_TEST(Sse41)
#endif
#if defined(AALIGN_HAVE_AVX2)
AALIGN_LAZYF_TEST(Avx2)
#endif
#if defined(AALIGN_HAVE_AVX512)
AALIGN_LAZYF_TEST(Avx512)
#endif
#if defined(AALIGN_HAVE_AVX512BW) && defined(__AVX512VBMI__)
AALIGN_LAZYF_TEST(Avx512Bw)
#endif

// Farrar-safe oracle round: the worst-case matrix above is deliberately
// outside the Farrar-shortcut precondition (both paths share the same
// shortcut, so bit-identity still holds); this round confirms the fixup
// against the sequential oracle under a safe configuration, narrow widths
// included, through the public API.
TEST(LazyFWorstCase, FarrarSafeOracle) {
  const auto& m = score::ScoreMatrix::blosum62();
  std::mt19937_64 rng(0x1a2f);
  const auto q = test::random_protein(rng, 300);
  const auto s = test::mutate(rng, q, 0.03, 0.01);  // high identity

  for (AlignKind kind : {AlignKind::Local, AlignKind::Global}) {
    AlignConfig cfg;
    cfg.kind = kind;
    cfg.pen = Penalties::symmetric(10, 2);
    const long expect = core::align_sequential(m, cfg, q, s);
    for (simd::IsaKind isa : test::available_isas()) {
      for (LazyF lazyf : {LazyF::Fixup, LazyF::Legacy}) {
        cfg.lazyf = lazyf;
        AlignOptions opt;
        opt.isa = isa;
        opt.width = ScoreWidth::Auto;
        opt.strategy = Strategy::StripedIterate;
        EXPECT_EQ(align_pair(m, cfg, q, s, opt).score, expect)
            << to_string(kind) << " " << to_string(lazyf) << " "
            << simd::isa_name(isa);
      }
    }
  }
}

}  // namespace
