// The correctness spine: every vector kernel (strategy x ISA x width x
// alignment kind x gap system) must reproduce the sequential reference
// score exactly, on random, mutated-similar, and adversarial inputs.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "core/aligner.h"
#include "core/sequential.h"
#include "score/matrices.h"
#include "test_helpers.h"

using namespace aalign;

namespace {

struct KernelCase {
  simd::IsaKind isa;
  ScoreWidth width;
  Strategy strategy;
  AlignKind kind;
  int pen_index;
};

std::string case_name(const testing::TestParamInfo<KernelCase>& info) {
  const KernelCase& c = info.param;
  std::string s = simd::isa_name(c.isa);
  s += "_";
  s += to_string(c.width);
  s += "_";
  s += to_string(c.strategy);
  s += "_";
  s += to_string(c.kind);
  s += "_pen";
  s += std::to_string(c.pen_index);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

std::vector<KernelCase> make_cases() {
  std::vector<KernelCase> cases;
  const auto pens = test::test_penalties();
  for (simd::IsaKind isa : test::available_isas()) {
    for (ScoreWidth width :
         {ScoreWidth::W8, ScoreWidth::W16, ScoreWidth::W32}) {
      // Skip widths the backend does not provide (e.g. AVX-512/IMCI profile
      // is 32-bit only).
      if (width == ScoreWidth::W16 &&
          core::get_engine<std::int16_t>(isa) == nullptr)
        continue;
      if (width == ScoreWidth::W32 &&
          core::get_engine<std::int32_t>(isa) == nullptr)
        continue;
      for (Strategy strategy : {Strategy::StripedIterate,
                                Strategy::StripedScan, Strategy::Hybrid}) {
        for (AlignKind kind :
             {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
              AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
          // int8 is exercised in dedicated saturation-aware tests; the
          // exact-equality sweep uses 16/32-bit.
          if (width == ScoreWidth::W8) continue;
          for (int p = 0; p < static_cast<int>(pens.size()); ++p) {
            cases.push_back(KernelCase{isa, width, strategy, kind, p});
          }
        }
      }
    }
  }
  return cases;
}

class KernelVsOracle : public testing::TestWithParam<KernelCase> {};

TEST_P(KernelVsOracle, MatchesSequentialReference) {
  const KernelCase& c = GetParam();
  const auto& matrix = score::ScoreMatrix::blosum62();

  AlignConfig cfg;
  cfg.kind = c.kind;
  cfg.pen = test::test_penalties()[static_cast<std::size_t>(c.pen_index)];

  AlignOptions opt;
  opt.strategy = c.strategy;
  opt.isa = c.isa;
  opt.width = c.width;
  // Aggressive hybrid parameters so the switching machinery actually
  // triggers inside short test sequences.
  opt.hybrid.window = 2;
  opt.hybrid.stride = 4;
  opt.hybrid.threshold = 0.05;

  PairAligner aligner(matrix, cfg, opt);
  if (aligner.options().width != ScoreWidth::Auto &&
      !simd::isa_available(c.isa)) {
    GTEST_SKIP() << "isa unavailable";
  }

  std::mt19937_64 rng(0xA11E + static_cast<unsigned>(c.pen_index));
  struct PairSpec {
    std::size_t m, n;
    double sub, indel;
  };
  const PairSpec specs[] = {
      {1, 1, 1.0, 0.0},      {1, 50, 1.0, 0.0},    {50, 1, 1.0, 0.0},
      {3, 200, 1.0, 0.0},    {33, 40, 0.9, 0.1},   {64, 64, 0.2, 0.02},
      {65, 63, 0.05, 0.01},  {128, 70, 0.5, 0.1},  {200, 200, 0.1, 0.02},
      {257, 101, 0.02, 0.0}, {90, 300, 0.3, 0.05},
  };

  for (const PairSpec& ps : specs) {
    const auto q = test::random_protein(rng, ps.m);
    auto s = test::mutate(rng, q, ps.sub, ps.indel);
    s.resize(std::max<std::size_t>(1, std::min(s.size(), ps.n)));

    const long expect = core::align_sequential(matrix, cfg, q, s);
    aligner.set_query(q);
    const AlignResult got = aligner.align(s);
    ASSERT_FALSE(got.saturated)
        << "unexpected saturation at m=" << ps.m << " n=" << s.size();
    ASSERT_EQ(got.score, expect)
        << "m=" << ps.m << " n=" << s.size() << " sub=" << ps.sub;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KernelVsOracle,
                         testing::ValuesIn(make_cases()), case_name);

// --- int8 kernels: exact when in range, flagged when saturated -----------

struct Int8Case {
  simd::IsaKind isa;
  Strategy strategy;
};

std::vector<Int8Case> int8_cases() {
  std::vector<Int8Case> cases;
  for (simd::IsaKind isa : test::available_isas()) {
    if (core::get_engine<std::int8_t>(isa) == nullptr) continue;
    for (Strategy s : {Strategy::StripedIterate, Strategy::StripedScan,
                       Strategy::Hybrid}) {
      cases.push_back({isa, s});
    }
  }
  return cases;
}

class Int8Kernels : public testing::TestWithParam<Int8Case> {};

TEST_P(Int8Kernels, ExactWithinRange) {
  const auto& matrix = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  AlignOptions opt;
  opt.strategy = GetParam().strategy;
  opt.isa = GetParam().isa;
  opt.width = ScoreWidth::W8;
  PairAligner aligner(matrix, cfg, opt);

  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 15; ++iter) {
    // Dissimilar pairs: local scores stay far below the int8 rail.
    const auto q = test::random_protein(rng, 60 + iter * 10);
    const auto s = test::random_protein(rng, 80);
    const long expect = core::align_sequential(matrix, cfg, q, s);
    if (expect >= 90) continue;  // stay clearly inside range
    aligner.set_query(q);
    const AlignResult got = aligner.align(s);
    EXPECT_FALSE(got.saturated);
    EXPECT_EQ(got.score, expect) << "iter " << iter;
  }
}

TEST_P(Int8Kernels, SaturationIsFlagged) {
  const auto& matrix = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  AlignOptions opt;
  opt.strategy = GetParam().strategy;
  opt.isa = GetParam().isa;
  opt.width = ScoreWidth::W8;
  PairAligner aligner(matrix, cfg, opt);

  std::mt19937_64 rng(78);
  // Identical 200-residue sequences: true score ~ 200 * avg(diag) >> 127.
  const auto q = test::random_protein(rng, 200);
  aligner.set_query(q);
  const AlignResult got = aligner.align(q);
  EXPECT_TRUE(got.saturated);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Int8Kernels,
                         testing::ValuesIn(int8_cases()),
                         [](const testing::TestParamInfo<Int8Case>& pinfo) {
                           std::string s = simd::isa_name(pinfo.param.isa);
                           s += "_";
                           s += to_string(pinfo.param.strategy);
                           for (char& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

// --- adaptive promotion ---------------------------------------------------

TEST(AdaptivePromotion, PromotesUntilExact) {
  const auto& matrix = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  for (simd::IsaKind isa : test::available_isas()) {
    AlignOptions opt;
    opt.isa = isa;
    opt.width = ScoreWidth::Auto;
    PairAligner aligner(matrix, cfg, opt);

    std::mt19937_64 rng(5);
    const auto q = test::random_protein(rng, 400);
    const auto s = test::mutate(rng, q, 0.05, 0.01);
    const long expect = core::align_sequential(matrix, cfg, q, s);
    ASSERT_GT(expect, 500);  // guaranteed beyond int8

    aligner.set_query(q);
    const AlignResult got = aligner.align(s);
    EXPECT_EQ(got.score, expect) << simd::isa_name(isa);
    EXPECT_FALSE(got.saturated);
    if (core::get_engine<std::int8_t>(isa) != nullptr) {
      EXPECT_GE(got.promotions, 1) << simd::isa_name(isa);
      EXPECT_GT(static_cast<int>(got.width),
                static_cast<int>(ScoreWidth::W8));
    }
  }
}

TEST(AdaptivePromotion, GlobalStartsWideEnough) {
  const auto& matrix = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Global;
  cfg.pen = Penalties::symmetric(10, 2);

  std::mt19937_64 rng(6);
  // Boundary gap magnitude ~ 10 + 600*2 = 1210: int8 impossible, int16 ok.
  const auto q = test::random_protein(rng, 600);
  const auto s = test::mutate(rng, q, 0.4, 0.05);
  const long expect = core::align_sequential(matrix, cfg, q, s);

  AlignOptions opt;
  opt.width = ScoreWidth::Auto;
  PairAligner aligner(matrix, cfg, opt);
  aligner.set_query(q);
  const AlignResult got = aligner.align(s);
  EXPECT_EQ(got.score, expect);
  EXPECT_EQ(got.promotions, 0);  // pre-check should skip int8 entirely
}

}  // namespace
