// End-to-end framework test: at BUILD time, the aalignc driver translated
// data/paradigm/{sw_affine,nw_linear}.c into the headers included below
// (see tests/CMakeLists.txt). This test proves the full Fig. 3 pipeline -
// sequential paradigm source in, compilable vectorized kernel out - and
// checks the generated kernels' scores against the sequential oracle.
#include <gtest/gtest.h>

#include <random>

#include "core/sequential.h"
#include "generated_nw_linear.h"  // build-time output of aalignc
#include "generated_sw_affine.h"  // build-time output of aalignc
#include "test_helpers.h"

using namespace aalign;

namespace {

TEST(GeneratedKernel, SwAffineMatchesOracle) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  std::mt19937_64 rng(808);
  for (int iter = 0; iter < 8; ++iter) {
    const auto q = test::random_protein(rng, 60 + iter * 37);
    const auto s = test::mutate(rng, q, 0.4, 0.1);
    const long expect = core::align_sequential(m, cfg, q, s);
    for (Strategy strat : {Strategy::StripedIterate, Strategy::StripedScan,
                           Strategy::Hybrid}) {
      EXPECT_EQ(aalign_generated_sw::align(q, s, strat), expect)
          << "iter " << iter << " " << to_string(strat);
    }
  }
}

TEST(GeneratedKernel, SwAffineConfigRoundTrip) {
  const AlignConfig cfg = aalign_generated_sw::config();
  EXPECT_EQ(cfg.kind, AlignKind::Local);
  EXPECT_EQ(cfg.pen.query.open, 10);
  EXPECT_EQ(cfg.pen.query.extend, 2);
  EXPECT_EQ(cfg.gap_model(), GapModel::Affine);
}

TEST(GeneratedKernel, NwLinearMatchesOracle) {
  const auto& m = score::ScoreMatrix::blosum62();
  AlignConfig cfg;
  cfg.kind = AlignKind::Global;
  cfg.pen = Penalties::symmetric(0, 4);

  std::mt19937_64 rng(809);
  for (int iter = 0; iter < 8; ++iter) {
    const auto q = test::random_protein(rng, 40 + iter * 29);
    const auto s = test::mutate(rng, q, 0.3, 0.08);
    const long expect = core::align_sequential(m, cfg, q, s);
    EXPECT_EQ(aalign_generated_nw::align(q, s), expect) << "iter " << iter;
  }
}

TEST(GeneratedKernel, NwLinearConfigRoundTrip) {
  const AlignConfig cfg = aalign_generated_nw::config();
  EXPECT_EQ(cfg.kind, AlignKind::Global);
  EXPECT_EQ(cfg.gap_model(), GapModel::Linear);
  EXPECT_EQ(cfg.pen.query.extend, 4);
}

}  // namespace
