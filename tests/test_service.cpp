// aalignd service stack: wire protocol round trips, admission queue
// shedding policy, differential bit-identity against direct library
// calls, structured edge-case errors, deadline/disconnect cancellation,
// degradation under load, and drain-then-exit shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "search/database_search.h"
#include "search/top_k.h"
#include "seq/generator.h"
#include "service/client.h"
#include "service/request_queue.h"
#include "service/service.h"
#include "service/tcp.h"
#include "simd/isa.h"

using namespace aalign;
using namespace std::chrono_literals;
using service::ErrorCode;
using service::WireRequest;
using service::WireResponse;

namespace {

seq::Database make_db(std::uint64_t seed, std::size_t count,
                      double median_len = 120.0) {
  seq::SequenceGenerator gen(seed);
  return seq::Database(score::Alphabet::protein(),
                       gen.protein_database(count, median_len, 0.5, 30, 400));
}

std::vector<std::string> make_queries(std::uint64_t seed, std::size_t n,
                                      std::size_t len) {
  seq::SequenceGenerator gen(seed);
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(gen.protein(len).residues);
  }
  return out;
}

AlignConfig local_cfg() {
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);
  return cfg;
}

service::ServiceOptions service_opt(int threads = 2) {
  service::ServiceOptions opt;
  opt.search.threads = threads;
  opt.search.query.isa = simd::best_available_isa();
  return opt;
}

std::uint64_t counter(const char* name) {
  return obs::registry().counter(name).value();
}

}  // namespace

TEST(ServiceProtocol, RequestRoundTrip) {
  WireRequest req;
  req.id = 42;
  req.queries = {"MKVA", "WWDD"};
  req.top_k = 7;
  req.deadline_ms = 250;
  req.allow_degraded = false;

  WireRequest back;
  ASSERT_EQ(service::parse_request(service::request_json(req), back), "");
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.queries, req.queries);
  EXPECT_EQ(back.top_k, req.top_k);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.allow_degraded, req.allow_degraded);
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  WireResponse resp;
  resp.id = 9;
  resp.ok = true;
  resp.degraded = true;
  resp.queue_ms = 1.5;
  resp.exec_ms = 20.25;
  resp.results.push_back(
      {{service::WireHit{3, "sp3", 88}, service::WireHit{1, "sp1", 70}}});

  const WireResponse back =
      service::parse_response(service::response_json(resp));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.id, 9);
  EXPECT_TRUE(back.degraded);
  ASSERT_EQ(back.results.size(), 1u);
  ASSERT_EQ(back.results[0].hits.size(), 2u);
  EXPECT_EQ(back.results[0].hits[0].subject, "sp3");
  EXPECT_EQ(back.results[0].hits[1].score, 70);

  const WireResponse err = service::parse_response(service::response_json(
      service::error_response(5, ErrorCode::Overloaded, "queue full")));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, ErrorCode::Overloaded);
  EXPECT_EQ(err.message, "queue full");
}

TEST(ServiceProtocol, ParseRejectsBadShapes) {
  WireRequest out;
  std::string e;
  EXPECT_NE(service::parse_request(obs::Json::parse("[1,2]", &e), out), "");
  EXPECT_NE(service::parse_request(obs::Json::parse("{}", &e), out), "");
  EXPECT_NE(
      service::parse_request(obs::Json::parse(R"({"queries": "MKV"})", &e),
                             out),
      "");
  EXPECT_NE(service::parse_request(
                obs::Json::parse(R"({"queries": ["M"], "top_k": -3})", &e),
                out),
            "");
  EXPECT_NE(
      service::parse_request(
          obs::Json::parse(R"({"queries": ["M"], "deadline_ms": "soon"})", &e),
          out),
      "");
  // Error codes survive a name round trip.
  for (ErrorCode c : {ErrorCode::InvalidRequest, ErrorCode::EmptyDatabase,
                      ErrorCode::QueryTooLong, ErrorCode::Overloaded,
                      ErrorCode::DeadlineExceeded, ErrorCode::Cancelled,
                      ErrorCode::ServerShutdown, ErrorCode::Internal}) {
    EXPECT_EQ(service::error_code_from_name(service::error_code_name(c)), c);
  }
}

TEST(RequestQueue, ShedsEarliestDeadlineWhenFull) {
  service::RequestQueue q(2);
  auto mk = [](std::int64_t id, std::int64_t deadline_ms) {
    WireRequest r;
    r.id = id;
    r.queries = {"M"};
    r.deadline_ms = deadline_ms;
    return service::make_pending(std::move(r));
  };

  std::shared_ptr<service::PendingRequest> victim;
  auto a = mk(1, 10000);  // latest deadline
  auto b = mk(2, 1000);
  EXPECT_EQ(q.push(a, &victim), service::RequestQueue::PushOutcome::Accepted);
  EXPECT_EQ(q.push(b, &victim), service::RequestQueue::PushOutcome::Accepted);

  // Full. An incoming request with a mid deadline displaces the queued
  // earliest-deadline one (b).
  auto c = mk(3, 5000);
  EXPECT_EQ(q.push(c, &victim),
            service::RequestQueue::PushOutcome::AcceptedShed);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->req.id, 2);

  // An incoming request whose own deadline is the earliest is itself shed.
  auto d = mk(4, 100);
  EXPECT_EQ(q.push(d, &victim),
            service::RequestQueue::PushOutcome::RejectedShed);
  EXPECT_EQ(victim, nullptr);

  // No-deadline requests sort last (treated as the latest deadline), so
  // an incoming best-effort request displaces the earliest-deadline
  // queued one - time-constrained work that was doomed anyway.
  auto e = mk(5, 0);
  EXPECT_EQ(q.push(e, &victim),
            service::RequestQueue::PushOutcome::AcceptedShed);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->req.id, 3);

  EXPECT_EQ(q.depth(), 2u);
  q.close();
  // Drain: queued items still pop after close; then nullptr.
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.push(mk(6, 0), &victim),
            service::RequestQueue::PushOutcome::Closed);
}

// The central serving contract: an un-degraded service response is
// bit-identical to a direct library search_many over the same inputs.
TEST(Service, DifferentialBitIdenticalToLibrary) {
  const auto& m = score::ScoreMatrix::blosum62();
  const AlignConfig cfg = local_cfg();
  const auto queries = make_queries(71, 3, 100);
  const std::size_t top_k = 5;

  // Direct library path.
  seq::Database lib_db = make_db(70, 120);
  search::SearchOptions lopt = service_opt().search;
  lopt.top_k = 0;
  lopt.keep_all_scores = true;
  const search::DatabaseSearch direct(m, cfg, lopt);
  std::vector<std::vector<std::uint8_t>> encoded;
  for (const std::string& q : queries) {
    encoded.push_back(m.alphabet().encode(q));
  }
  const auto want = direct.search_many(encoded, lib_db);

  // Service path over real TCP.
  service::AlignService svc(m, cfg, make_db(70, 120), service_opt());
  service::TcpServer server(svc);
  server.start();
  service::ServiceClient client("127.0.0.1", server.port());
  WireRequest req;
  req.id = 1;
  req.queries = queries;
  req.top_k = top_k;
  const WireResponse resp = client.call(req);

  ASSERT_TRUE(resp.ok) << resp.message;
  EXPECT_FALSE(resp.degraded);
  ASSERT_EQ(resp.results.size(), queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto hits = search::select_top_k(want[qi].scores, top_k);
    ASSERT_EQ(resp.results[qi].hits.size(), hits.size());
    for (std::size_t h = 0; h < hits.size(); ++h) {
      EXPECT_EQ(resp.results[qi].hits[h].index, hits[h].index);
      EXPECT_EQ(resp.results[qi].hits[h].score, hits[h].score);
    }
  }
}

TEST(Service, EdgeCasesProduceStructuredErrors) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::ServiceOptions opt = service_opt();
  opt.max_query_len = 500;
  opt.max_queries = 4;
  service::AlignService svc(m, local_cfg(), make_db(81, 40), opt);

  auto expect_code = [&](WireRequest req, ErrorCode code) {
    const WireResponse resp = svc.execute(std::move(req));
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error, code) << resp.message;
  };

  WireRequest none;  // no queries
  expect_code(none, ErrorCode::InvalidRequest);

  WireRequest zero_k;
  zero_k.queries = {"MKVA"};
  zero_k.top_k = 0;
  expect_code(zero_k, ErrorCode::InvalidRequest);

  WireRequest empty_q;
  empty_q.queries = {""};
  expect_code(empty_q, ErrorCode::InvalidRequest);

  WireRequest huge;
  huge.queries = {std::string(501, 'M')};
  expect_code(huge, ErrorCode::QueryTooLong);

  WireRequest many;
  many.queries.assign(5, "MKVA");
  expect_code(many, ErrorCode::InvalidRequest);

  WireRequest big_k;
  big_k.queries = {"MKVA"};
  big_k.top_k = opt.max_top_k + 1;
  expect_code(big_k, ErrorCode::InvalidRequest);

  // Empty database: valid shape, structured empty_database error.
  service::AlignService empty_svc(m, local_cfg(), seq::Database(),
                                  service_opt());
  WireRequest ok_shape;
  ok_shape.queries = {"MKVA"};
  const WireResponse resp = empty_svc.execute(std::move(ok_shape));
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, ErrorCode::EmptyDatabase);
}

// Malformed wire input is answered with a structured error on the same
// connection; the server survives and serves the next (valid) request.
TEST(Service, MalformedLinesAnswerInvalidRequest) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::AlignService svc(m, local_cfg(), make_db(91, 30), service_opt());
  service::TcpServer server(svc);
  server.start();
  service::ServiceClient client("127.0.0.1", server.port());

  ASSERT_TRUE(client.send_raw("this is not json"));
  WireResponse resp = client.read_response();
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, ErrorCode::InvalidRequest);

  ASSERT_TRUE(client.send_raw(R"({"id": 3, "queries": 17})"));
  resp = client.read_response();
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, ErrorCode::InvalidRequest);
  EXPECT_EQ(resp.id, 3);

  WireRequest good;
  good.id = 4;
  good.queries = make_queries(92, 1, 80);
  resp = client.call(good);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.id, 4);
}

// A request whose deadline expires never returns partial scores: the
// response is the structured deadline_exceeded error, and the service
// keeps serving afterwards.
TEST(Service, DeadlineExpiredNeverReturnsPartialScores) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::AlignService svc(m, local_cfg(), make_db(101, 800, 250.0),
                            service_opt());

  const std::uint64_t before = counter("service.deadline_exceeded");
  WireRequest req;
  req.id = 1;
  req.queries = make_queries(102, 4, 600);
  req.deadline_ms = 1;  // expires while queued or mid-execution
  const WireResponse resp = svc.execute(std::move(req));
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, ErrorCode::DeadlineExceeded) << resp.message;
  EXPECT_TRUE(resp.results.empty());
  if (obs::metrics_enabled()) {
    EXPECT_GT(counter("service.deadline_exceeded"), before);
  }

  WireRequest calm;
  calm.id = 2;
  calm.queries = make_queries(103, 1, 60);
  const WireResponse ok = svc.execute(std::move(calm));
  EXPECT_TRUE(ok.ok) << ok.message;
}

// Client disconnect mid-request fires the token: the executor stops the
// alignment (service.cancelled) instead of computing a response nobody
// will read.
TEST(Service, DisconnectCancelsInFlightRequest) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "needs service counters";
  const auto& m = score::ScoreMatrix::blosum62();
  service::AlignService svc(m, local_cfg(), make_db(111, 1500, 300.0),
                            service_opt());
  service::TcpServer server(svc);
  server.start();

  const std::uint64_t before = counter("service.cancelled");
  auto client = std::make_unique<service::ServiceClient>("127.0.0.1",
                                                         server.port());
  WireRequest req;
  req.id = 1;
  req.queries = make_queries(112, 6, 800);  // seconds of work
  ASSERT_TRUE(client->send_only(req));
  std::this_thread::sleep_for(30ms);  // let it reach the executor
  client->close();                    // vanish mid-request

  // The connection thread polls its socket every 10ms and fires the
  // token; the executor then finishes within one stride-chunk.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (counter("service.cancelled") == before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(counter("service.cancelled"), before)
      << "disconnect did not cancel the in-flight request";
}

// Overload: with a single busy executor and a tiny queue, excess requests
// are shed with the structured overloaded error, preferring the earliest
// deadline as victim.
TEST(Service, ShedsUnderOverload) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::ServiceOptions opt = service_opt();
  opt.queue_capacity = 1;
  opt.degrade_depth = 1000;  // keep this test about shedding only
  service::AlignService svc(m, local_cfg(), make_db(121, 600, 250.0), opt);

  const std::uint64_t shed_before = counter("service.shed");

  // R1 occupies the executor; R2 fills the queue; R3 (earliest deadline)
  // must be shed immediately.
  WireRequest r1;
  r1.id = 1;
  r1.queries = make_queries(122, 3, 500);
  auto p1 = svc.submit(std::move(r1));

  // Wait until the executor has picked R1 up, so R2 is queued (not
  // displaced: R1 carries no deadline and would otherwise be the victim).
  for (int i = 0; i < 2000 && svc.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  WireRequest r2;
  r2.id = 2;
  r2.queries = make_queries(123, 1, 50);
  r2.deadline_ms = 60000;
  auto p2 = svc.submit(std::move(r2));
  EXPECT_EQ(svc.queue_depth(), 1u);  // R1 executing, R2 waiting: full

  WireRequest r3;
  r3.id = 3;
  r3.queries = make_queries(124, 1, 50);
  r3.deadline_ms = 5;  // earliest deadline in a full queue -> shed
  auto p3 = svc.submit(std::move(r3));
  const WireResponse resp3 = p3->wait();
  EXPECT_FALSE(resp3.ok);
  EXPECT_TRUE(resp3.error == ErrorCode::Overloaded ||
              resp3.error == ErrorCode::DeadlineExceeded)
      << service::error_code_name(resp3.error);
  if (obs::metrics_enabled() && resp3.error == ErrorCode::Overloaded) {
    EXPECT_GT(counter("service.shed"), shed_before);
  }

  // The occupying requests complete normally (drain happens in shutdown).
  EXPECT_TRUE(p1->wait().ok);
  (void)p2->wait();
}

// Load-based degradation: above the depth threshold requests flip to the
// int8 fast path and say so; clients can opt out and opting out keeps the
// exact path.
TEST(Service, DegradesUnderLoadAndHonorsOptOut) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::ServiceOptions opt = service_opt();
  opt.degrade_depth = 0;  // always degrade (deterministic load signal)
  service::AlignService svc(m, local_cfg(), make_db(131, 80), opt);

  const std::uint64_t before = counter("service.degraded");
  WireRequest req;
  req.id = 1;
  req.queries = make_queries(132, 1, 90);
  req.top_k = 3;
  const WireResponse degraded = svc.execute(req);
  ASSERT_TRUE(degraded.ok) << degraded.message;
  EXPECT_TRUE(degraded.degraded);
  if (obs::metrics_enabled()) {
    EXPECT_GT(counter("service.degraded"), before);
  }

  req.id = 2;
  req.allow_degraded = false;
  const WireResponse exact = svc.execute(req);
  ASSERT_TRUE(exact.ok) << exact.message;
  EXPECT_FALSE(exact.degraded);
  ASSERT_EQ(exact.results.size(), 1u);
  // int8 scores can clip at the rail but never exceed the exact score.
  ASSERT_EQ(degraded.results.size(), 1u);
  ASSERT_FALSE(exact.results[0].hits.empty());
  EXPECT_LE(degraded.results[0].hits[0].score,
            exact.results[0].hits[0].score);
}

// Drain-then-exit: requests accepted before shutdown all complete with
// real answers; requests after shutdown get server_shutdown.
TEST(Service, ShutdownDrainsAcceptedRequests) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::ServiceOptions opt = service_opt();
  service::AlignService svc(m, local_cfg(), make_db(141, 200), opt);

  std::vector<std::shared_ptr<service::PendingRequest>> pending;
  for (int i = 0; i < 4; ++i) {
    WireRequest req;
    req.id = i + 1;
    req.queries = make_queries(142 + static_cast<std::uint64_t>(i), 2, 150);
    pending.push_back(svc.submit(std::move(req)));
  }
  svc.shutdown();  // returns only after the queue fully drains

  for (const auto& p : pending) {
    const WireResponse& resp = p->wait();
    EXPECT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.results.size(), 2u);
  }

  WireRequest late;
  late.queries = make_queries(150, 1, 50);
  const WireResponse resp = svc.execute(std::move(late));
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error, ErrorCode::ServerShutdown);
}

// TCP-level drain: a server stopped while a request is executing still
// delivers that response before the connection closes.
TEST(Service, TcpStopDeliversInFlightResponse) {
  const auto& m = score::ScoreMatrix::blosum62();
  service::AlignService svc(m, local_cfg(), make_db(151, 300, 200.0),
                            service_opt());
  auto server = std::make_unique<service::TcpServer>(svc);
  server->start();
  service::ServiceClient client("127.0.0.1", server->port());

  WireRequest req;
  req.id = 77;
  req.queries = make_queries(152, 2, 300);
  ASSERT_TRUE(client.send_only(req));
  std::this_thread::sleep_for(10ms);
  server->request_stop();  // drain begins while the request is in flight

  const WireResponse resp = client.read_response();
  EXPECT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(resp.id, 77);
  server->join();
}
