// Variable gap penalties - the paper's stated future work (Sec. V-D:
// "present framework only supports constant gap penalties... variable
// penalties used in, for example, the dynamic time warping algorithm").
//
// The generalized paradigm (Eq. 2) already allows theta/beta to vary per
// position; this example exercises the library's variable-penalty
// reference path on a DTW-flavoured task: aligning two noisy step
// patterns where gaps are cheap in "flat" regions and expensive at
// "edges" (positions where the signal changes), so the alignment prefers
// to absorb time-warp in plateaus.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sequential.h"
#include "score/matrices.h"

using namespace aalign;

namespace {

// Quantize a step signal into DNA-letter levels (A/C/G/T = 4 levels).
std::string quantize(const std::vector<int>& signal) {
  std::string s;
  for (int v : signal) s.push_back("ACGT"[v & 3]);
  return s;
}

// Edge-aware gap costs: opening a gap where the signal changes is 5x the
// plateau cost.
void edge_penalties(const std::vector<int>& signal, std::vector<int>& open,
                    std::vector<int>& ext) {
  const std::size_t n = signal.size();
  open.assign(n, 2);
  ext.assign(n, 1);
  for (std::size_t i = 1; i < n; ++i) {
    if (signal[i] != signal[i - 1]) {
      open[i] = 10;
      open[i - 1] = 10;
    }
  }
}

std::vector<int> make_steps(const std::vector<std::pair<int, int>>& plan) {
  std::vector<int> out;
  for (auto [level, len] : plan) out.insert(out.end(), len, level);
  return out;
}

}  // namespace

int main() {
  // Same step pattern, different plateau durations (a time-warped pair).
  const std::vector<int> a =
      make_steps({{0, 8}, {2, 12}, {1, 6}, {3, 10}, {0, 9}});
  const std::vector<int> b =
      make_steps({{0, 12}, {2, 7}, {1, 11}, {3, 6}, {0, 13}});

  const score::ScoreMatrix matrix = score::ScoreMatrix::dna(4, 3);
  const auto& alphabet = matrix.alphabet();
  const auto qa = alphabet.encode(quantize(a));
  const auto qb = alphabet.encode(quantize(b));

  std::printf("variable-gap alignment demo (DTW-style), |A|=%zu |B|=%zu\n\n",
              qa.size(), qb.size());

  // Constant penalties for contrast.
  AlignConfig cfg;
  cfg.kind = AlignKind::Global;
  cfg.pen = Penalties::symmetric(6, 1);
  const long const_score = core::align_sequential(matrix, cfg, qa, qb);
  std::printf("constant gaps (open 6 / ext 1): global score %ld\n",
              const_score);

  // Position-dependent penalties: cheap in plateaus, expensive at edges.
  std::vector<int> open_a, ext_a, open_b, ext_b;
  edge_penalties(a, open_a, ext_a);
  edge_penalties(b, open_b, ext_b);
  const long var_score = core::align_sequential_vargap(
      matrix, AlignKind::Global, qa, qb, open_a, ext_a, open_b, ext_b);
  std::printf("edge-aware gaps (2/1 plateau, 10/1 edge): global score %ld\n",
              var_score);

  std::printf(
      "\nthe edge-aware score is higher: the warp is absorbed inside "
      "plateaus where gaps are cheap, instead of being charged a flat "
      "rate everywhere.\n");
  return var_score >= const_score ? 0 : 1;
}
