// Fig. 5 reproduction: the hybrid method's view of one alignment.
//
// Aligns a query against a subject whose MIDDLE third is a high-identity
// homolog region (exactly the paper's example: iterate is cheap on the
// dissimilar head and tail, expensive in the similar middle). Prints the
// per-column lazy-F re-computation counter and where the hybrid method
// switches to striped-scan and probes back.
//
// Uses the scalar backend's ColumnEngine directly (no ISA flags needed),
// so the counter trace is the exact signal the production kernels see.
#include <cstdio>
#include <vector>

#include "core/column_engine.h"
#include "core/config.h"
#include "seq/generator.h"
#include "seq/pairgen.h"
#include "simd/vec_scalar.h"

using namespace aalign;

int main() {
  using Ops = simd::VecOps<std::int32_t, simd::ScalarTag>;

  const auto& matrix = score::ScoreMatrix::blosum62();
  seq::SequenceGenerator gen(5);

  // Query; subject = random head + similar middle + random tail.
  const seq::Sequence qseq = gen.protein(600, "Q");
  const auto query = matrix.alphabet().encode(qseq.residues);
  seq::Sequence mid_src;
  mid_src.residues = qseq.residues.substr(150, 300);
  const seq::Sequence homolog = seq::make_similar_subject(
      gen, mid_src, {seq::Level::Hi, seq::Level::Hi});
  const std::string subject_str = gen.protein(400).residues +
                                  homolog.residues +
                                  gen.protein(400).residues;
  const auto subject = matrix.alphabet().encode(subject_str);

  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);
  const HybridParams hp;  // calibrated defaults

  score::StripedProfile<std::int32_t> prof;
  score::build_striped_profile<std::int32_t>(
      prof, query, matrix, Ops::kWidth, simd::neg_inf<std::int32_t>());
  core::Workspace<std::int32_t> ws;
  core::ColumnEngine<Ops, AlignKind::Local, true> eng(
      prof, core::make_steps<std::int32_t>(cfg), ws);

  const double segs = static_cast<double>(eng.segs());
  const long n = static_cast<long>(subject.size());
  std::printf("hybrid trace: |Q|=%zu, subject = 400 random + %zu homologous "
              "+ 400 random\n",
              query.size(), homolog.residues.size());
  std::printf("threshold %.2f passes/col, window %d, probe stride %d\n\n",
              hp.threshold, hp.window, hp.stride);
  std::printf("%-12s %-14s %-8s\n", "columns", "passes/col", "mode");

  bool scan_mode = false;
  long i = 1;
  while (i <= n) {
    if (scan_mode) {
      const long count = std::min<long>(hp.stride, n - i + 1);
      eng.run_scan_block(i, subject.data(), count);
      std::printf("%5ld-%-6ld %-14s %-8s\n", i, i + count - 1, "(fixed)",
                  "SCAN");
      i += count;
      scan_mode = false;  // probe
    } else {
      const long count = std::min<long>(hp.window, n - i + 1);
      const auto lazy = eng.run_iterate_block(i, subject.data(), count);
      const double passes =
          static_cast<double>(lazy) / (segs * static_cast<double>(count));
      std::printf("%5ld-%-6ld %-14.3f %-8s%s\n", i, i + count - 1, passes,
                  "iterate",
                  passes > hp.threshold ? "  -> switch to scan" : "");
      i += count;
      if (passes > hp.threshold) scan_mode = true;
    }
  }
  std::printf("\nfinal local score: %ld\n", eng.finalize());
  std::printf(
      "reading: the counter spikes over the homologous middle (the paper's "
      "Fig. 5 hump) and the hybrid rides scan exactly there.\n");
  return 0;
}
