// Quickstart: align two protein fragments with every combination of
// algorithm, gap system, and vectorization strategy, then show the actual
// alignment path for the local case.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/aligner.h"
#include "core/traceback.h"
#include "score/matrices.h"

using namespace aalign;

int main() {
  const score::ScoreMatrix& matrix = score::ScoreMatrix::blosum62();
  const score::Alphabet& alphabet = matrix.alphabet();

  // Two fragments of hemoglobin-like sequence with a diverged middle.
  const auto query = alphabet.encode(
      "MVLSPADKTNVKAAWGKVGAHAGEYGAEALERMFLSFPTTKTYFPHFDLSHGSAQVKGHGKKVADAL");
  const auto subject = alphabet.encode(
      "MVHLTPEEKSAVTALWGKVNVDEVGGEALGRLLVVYPWTQRFFESFGDLSTPDAVMGNPKVKAHGKKVLGAF");

  std::printf("AAlign quickstart: |Q| = %zu, |S| = %zu, matrix = %s\n\n",
              query.size(), subject.size(), matrix.name().c_str());
  std::printf("%-17s %-8s %-18s %8s %10s\n", "algorithm", "gaps", "strategy",
              "score", "lazy-steps");

  for (AlignKind kind :
       {AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal,
        AlignKind::SemiGlobalQuery, AlignKind::Overlap}) {
    for (bool affine : {true, false}) {
      AlignConfig cfg;
      cfg.kind = kind;
      cfg.pen = affine ? Penalties::symmetric(10, 2)
                       : Penalties::symmetric(0, 4);
      for (Strategy strat : {Strategy::StripedIterate, Strategy::StripedScan,
                             Strategy::Hybrid}) {
        AlignOptions opt;
        opt.strategy = strat;
        const AlignResult r = align_pair(matrix, cfg, query, subject, opt);
        std::printf("%-17s %-8s %-18s %8ld %10llu\n", to_string(kind),
                    affine ? "affine" : "linear", to_string(strat), r.score,
                    static_cast<unsigned long long>(r.stats.lazy_steps));
      }
    }
  }

  // Show the actual local alignment.
  AlignConfig cfg;
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);
  const core::Alignment aln =
      core::align_traceback(matrix, cfg, query, subject);
  const core::AlignmentRows rows =
      core::render_alignment(alphabet, query, subject, aln);
  std::printf("\nLocal alignment (score %ld, CIGAR %s):\n  %s\n  %s\n  %s\n",
              aln.score, aln.cigar.c_str(), rows.query.c_str(),
              rows.midline.c_str(), rows.subject.c_str());
  return 0;
}
