// Overlap (dovetail) alignment demo: the assembly-flavoured use case for
// AlignKind::Overlap. Simulates noisy DNA "reads" drawn from one genome
// with staggered offsets and detects which pairs dovetail (suffix of one
// overlapping the prefix of the next) by comparing their overlap score to
// a random-pair baseline.
//
//   $ ./build/examples/read_overlap
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/traceback.h"
#include "seq/generator.h"

using namespace aalign;

int main() {
  seq::SequenceGenerator gen(2027);
  std::mt19937_64 rng(9);

  // A "genome" and four 400 bp reads at staggered 250 bp offsets, each
  // with 3% substitution noise.
  const seq::Sequence genome = gen.dna(1400, "genome");
  const score::ScoreMatrix matrix = score::ScoreMatrix::dna(5, 4);
  const auto& alphabet = matrix.alphabet();

  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> base(0, 3);
  auto make_read = [&](std::size_t offset, std::size_t len,
                       const std::string& id) {
    seq::Sequence r;
    r.id = id;
    r.residues = genome.residues.substr(offset, len);
    for (char& c : r.residues) {
      if (u(rng) < 0.03) c = "ACGT"[base(rng)];
    }
    return r;
  };
  std::vector<seq::Sequence> reads;
  for (int k = 0; k < 4; ++k) {
    reads.push_back(make_read(static_cast<std::size_t>(k) * 250, 400,
                              "read" + std::to_string(k)));
  }
  reads.push_back(gen.dna(400, "decoy"));  // unrelated read

  AlignConfig cfg;
  cfg.kind = AlignKind::Overlap;
  cfg.pen = Penalties::symmetric(10, 4);

  std::printf("dovetail detection over %zu reads (overlap alignment, "
              "DNA +5/-4, gaps 10/4)\n\n",
              reads.size());
  std::printf("%-8s %-8s %8s %9s %9s  %s\n", "A", "B", "score", "A-span",
              "B-span", "verdict");

  for (std::size_t a = 0; a < reads.size(); ++a) {
    for (std::size_t b = a + 1; b < reads.size(); ++b) {
      const auto qa = alphabet.encode(reads[a].residues);
      const auto qb = alphabet.encode(reads[b].residues);
      const AlignResult r = align_pair(matrix, cfg, qa, qb);
      // Overlap length implied by a dovetail: use the traceback spans.
      const core::Alignment aln =
          core::align_traceback(matrix, cfg, qa, qb);
      const bool hit = r.score > 120;  // ~>60 matching bases net
      std::printf("%-8s %-8s %8ld %4zu-%-4zu %4zu-%-4zu  %s\n",
                  reads[a].id.c_str(), reads[b].id.c_str(), r.score,
                  aln.query_begin, aln.query_end, aln.subject_begin,
                  aln.subject_end, hit ? "DOVETAIL" : "-");
    }
  }
  std::printf(
      "\nexpected: consecutive reads (read0-read1, read1-read2, ...) share "
      "~150 bp and score high; skip-one pairs share nothing; the decoy "
      "matches no one.\n");
  return 0;
}
