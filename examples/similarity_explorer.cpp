// Similarity explorer: generates subject sequences at each of the paper's
// nine QC_MI similarity bands (Fig. 10's x-axis), verifies the realized
// coverage/identity with a real traceback, and shows how the similarity
// level drives the vectorization strategies' behaviour - the lazy-F
// re-computation counter rises with similarity, which is exactly the
// signal the hybrid method thresholds.
//
//   $ ./build/examples/similarity_explorer [query_len]
#include <cstdio>
#include <cstdlib>

#include "core/aligner.h"
#include "core/stats.h"
#include "seq/generator.h"
#include "seq/pairgen.h"

using namespace aalign;

int main(int argc, char** argv) {
  const std::size_t qlen =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2000;

  const auto& matrix = score::ScoreMatrix::blosum62();
  const auto& alphabet = matrix.alphabet();
  seq::SequenceGenerator gen(2024);

  const seq::Sequence query = gen.protein(qlen, "Q");
  const auto qenc = alphabet.encode(query.residues);

  AlignConfig cfg;  // SW-affine, the paper's calibration config
  cfg.kind = AlignKind::Local;
  cfg.pen = Penalties::symmetric(10, 2);

  std::printf("query length %zu, SW-affine, ISA %s\n\n", qlen,
              simd::isa_name(simd::best_available_isa()));
  std::printf("%-7s | %6s %6s | %8s %12s %10s | %s\n", "band", "QC", "MI",
              "score", "lazy-steps", "passes/col", "hybrid switches");

  for (seq::Level qc : {seq::Level::Hi, seq::Level::Md, seq::Level::Lo}) {
    for (seq::Level mi : {seq::Level::Hi, seq::Level::Md, seq::Level::Lo}) {
      const seq::SimilaritySpec spec{qc, mi};
      const seq::Sequence subj = seq::make_similar_subject(gen, query, spec);
      const auto senc = alphabet.encode(subj.residues);

      const core::SimilarityStats st =
          core::measure_similarity(matrix, qenc, senc);

      AlignOptions iter_opt;
      iter_opt.strategy = Strategy::StripedIterate;
      const AlignResult it = align_pair(matrix, cfg, qenc, senc, iter_opt);

      AlignOptions hyb_opt;
      hyb_opt.strategy = Strategy::Hybrid;
      const AlignResult hy = align_pair(matrix, cfg, qenc, senc, hyb_opt);

      const auto* engine = core::get_engine<std::int32_t>(hy.isa);
      const double segs = static_cast<double>(
          (qenc.size() + engine->lanes() - 1) / engine->lanes());
      const double passes =
          static_cast<double>(it.stats.lazy_steps) /
          (segs * static_cast<double>(it.stats.columns));

      std::printf("%-7s | %5.0f%% %5.0f%% | %8ld %12llu %10.3f | %llu\n",
                  spec.label().c_str(), st.query_coverage * 100,
                  st.max_identity * 100, it.score,
                  static_cast<unsigned long long>(it.stats.lazy_steps),
                  passes,
                  static_cast<unsigned long long>(hy.stats.switches));
    }
  }
  std::printf(
      "\nreading: similar pairs (hi bands) force more lazy-F passes per "
      "column; the hybrid method switches to striped-scan exactly on those "
      "inputs.\n");
  return 0;
}
