// Database search example: the paper's Sec. V-E use case end to end.
//
// Builds (or reads) a protein database, searches it with a query using
// the multi-threaded hybrid kernels, and prints the top hits with their
// similarity statistics (query coverage / identity, measured from a real
// traceback, as in Fig. 10's axes).
//
// Usage:
//   database_search                         # synthetic 5k-sequence demo
//   database_search DB.fasta QUERY.fasta    # your own FASTA files
#include <cstdio>
#include <string>

#include "core/stats.h"
#include "search/database_search.h"
#include "seq/fasta.h"
#include "seq/generator.h"
#include "seq/pairgen.h"

using namespace aalign;

int main(int argc, char** argv) {
  const auto& matrix = score::ScoreMatrix::blosum62();
  const auto& alphabet = matrix.alphabet();

  seq::Sequence query;
  std::vector<seq::Sequence> raw_db;

  if (argc >= 3) {
    raw_db = seq::read_fasta_file(argv[1]);
    const auto queries = seq::read_fasta_file(argv[2]);
    if (queries.empty() || raw_db.empty()) {
      std::fprintf(stderr, "empty FASTA input\n");
      return 1;
    }
    query = queries.front();
  } else {
    // Synthetic demo: a database with a handful of planted homologs.
    seq::SequenceGenerator gen(7);
    query = gen.protein(400, "demo_query");
    raw_db = gen.protein_database(5000);
    for (auto qc : {seq::Level::Hi, seq::Level::Md}) {
      for (auto mi : {seq::Level::Hi, seq::Level::Md}) {
        raw_db.push_back(
            seq::make_similar_subject(gen, query, {qc, mi}));
      }
    }
  }

  seq::Database db(alphabet, raw_db);
  const auto qenc = alphabet.encode(query.residues);

  search::SearchOptions opt;
  opt.top_k = 10;
  opt.query.strategy = Strategy::Hybrid;
  opt.query.isa = simd::best_available_isa();

  search::DatabaseSearch engine(matrix, {}, opt);
  const search::SearchResult res = engine.search(qenc, db);

  std::printf("query '%s' (%zu aa) vs %zu sequences (%zu residues)\n",
              query.id.c_str(), query.size(), db.size(),
              db.total_residues());
  std::printf("search took %.3f s  =  %.2f GCUPS on %s; %llu adaptive "
              "promotions, %llu hybrid switches\n\n",
              res.seconds, res.gcups, simd::isa_name(opt.query.isa),
              static_cast<unsigned long long>(res.promotions),
              static_cast<unsigned long long>(res.stats.switches));

  std::printf("%-4s %-24s %7s %7s %6s %6s\n", "#", "subject", "score",
              "len", "QC", "MI");
  int rank = 1;
  for (const search::SearchHit& hit : res.top) {
    const seq::EncodedSequence& subj = db.by_original(hit.index);
    const core::SimilarityStats st =
        core::measure_similarity(matrix, qenc, subj.view());
    std::printf("%-4d %-24.24s %7ld %7zu %5.0f%% %5.0f%%\n", rank++,
                subj.id.c_str(), hit.score, subj.size(),
                st.query_coverage * 100.0, st.max_identity * 100.0);
  }
  return 0;
}
