// The AAlign framework pipeline (paper Fig. 3) in one process:
//
//   sequential paradigm source --parse--> AST --analyze--> Table II spec
//   --emit--> vectorized C++ kernel source, and the same spec driven
//   directly through the kernel templates to align real sequences.
//
// Usage:
//   codegen_pipeline [paradigm.c]    (default: data/paradigm/sw_affine.c)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "codegen/emit.h"
#include "codegen/sema.h"
#include "core/aligner.h"
#include "core/sequential.h"
#include "seq/generator.h"

using namespace aalign;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "data/paradigm/sw_affine.c";

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s (run from the repo root, or pass a "
                         "paradigm source)\n",
                 path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  // 1. Parse + verify (the paper's AST traversal, Table II extraction).
  //    The diagnostic engine accumulates every violation in one run
  //    instead of stopping at the first.
  codegen::DiagnosticEngine diags;
  const codegen::Program program = codegen::parse(buf.str(), diags);
  codegen::KernelSpec spec;
  if (!diags.has_errors()) spec = codegen::verify(program, diags);
  if (diags.has_errors()) {
    std::fputs(diags.render(buf.str(), path).c_str(), stderr);
    return 1;
  }
  std::printf("=== extracted configuration (%s) ===\n%s\n", path.c_str(),
              spec.summary().c_str());

  // 2. Emit the vectorized kernel source.
  const std::string code = codegen::emit_cpp(spec);
  std::printf("=== generated kernel (%zu bytes) ===\n", code.size());
  std::printf("%.600s\n...\n\n", code.c_str());

  // 3. Drive the same configuration through the kernels right here.
  seq::SequenceGenerator gen(1);
  const auto& matrix = score::ScoreMatrix::blosum62();
  const auto q = matrix.alphabet().encode(gen.protein(300).residues);
  const auto s = matrix.alphabet().encode(gen.protein(350).residues);

  const AlignConfig cfg = spec.to_config();
  std::printf("=== running the generated configuration ===\n");
  for (Strategy strat : {Strategy::StripedIterate, Strategy::StripedScan,
                         Strategy::Hybrid}) {
    AlignOptions opt;
    opt.strategy = strat;
    const AlignResult r = align_pair(matrix, cfg, q, s, opt);
    std::printf("  %-16s -> score %ld (%s, %s)\n", to_string(strat), r.score,
                simd::isa_name(r.isa), to_string(r.width));
  }
  std::printf("  %-16s -> score %ld\n", "sequential",
              core::align_sequential(matrix, cfg, q, s));
  return 0;
}
